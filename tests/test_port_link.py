"""Tests for ports, egress queues and links."""

import pytest

from repro.net.link import Link, gbps, mbps
from repro.net.node import Host
from repro.net.packet import udp_packet
from repro.net.port import EgressQueue
from repro.net.sim import Simulator


def _pair(rate=mbps(100), delay=1e-6, queue_bytes=512 * 1024, queue_packets=None):
    sim = Simulator()
    a, b = Host(sim, "a"), Host(sim, "b")
    pa = a.add_port(queue_bytes, queue_packets)
    pb = b.add_port(queue_bytes, queue_packets)
    link = Link(pa, pb, rate_bps=rate, delay_s=delay)
    return sim, a, b, link


class TestEgressQueue:
    def test_fifo_order(self):
        queue = EgressQueue()
        first, second = udp_packet("a", "b", 10), udp_packet("a", "b", 10)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_occupancy_tracks_bytes_and_packets(self):
        queue = EgressQueue()
        packet = udp_packet("a", "b", 100)
        queue.enqueue(packet)
        assert queue.occupancy_packets == 1
        assert queue.occupancy_bytes == packet.size
        queue.dequeue()
        assert queue.occupancy_packets == 0
        assert queue.occupancy_bytes == 0

    def test_byte_capacity_drop(self):
        queue = EgressQueue(capacity_bytes=200)
        assert queue.enqueue(udp_packet("a", "b", 100))
        assert not queue.enqueue(udp_packet("a", "b", 100))
        assert queue.packets_dropped_total == 1

    def test_packet_capacity_drop(self):
        queue = EgressQueue(capacity_packets=2)
        assert queue.enqueue(udp_packet("a", "b", 10))
        assert queue.enqueue(udp_packet("a", "b", 10))
        assert not queue.enqueue(udp_packet("a", "b", 10))
        assert queue.packets_dropped_total == 1

    def test_dequeue_empty_returns_none(self):
        assert EgressQueue().dequeue() is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EgressQueue(capacity_bytes=0)


class TestLink:
    def test_invalid_rate_rejected(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        with pytest.raises(ValueError):
            Link(a.add_port(), b.add_port(), rate_bps=0)

    def test_other_end(self):
        _, a, b, link = _pair()
        assert link.other_end(a.ports[0]) is b.ports[0]
        assert link.other_end(b.ports[0]) is a.ports[0]

    def test_unit_helpers(self):
        assert mbps(100) == 100e6
        assert gbps(10) == 10e9


class TestTransmission:
    def test_packet_delivered_after_serialisation_and_propagation(self):
        sim, a, b, link = _pair(rate=mbps(100), delay=10e-6)
        packet = udp_packet("a", "b", 958)     # 1000 B on the wire
        b.keep_received_log = True
        a.send(packet)
        sim.run_until_idle()
        assert b.packets_received == 1
        expected = 1000 * 8 / mbps(100) + 10e-6
        assert packet.delivered_at == pytest.approx(expected)

    def test_back_to_back_packets_serialise(self):
        sim, a, b, _ = _pair(rate=mbps(10), delay=0.0)
        for _ in range(3):
            a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert b.packets_received == 3
        # Three 1000-byte packets at 10 Mb/s take 2.4 ms to drain.
        assert sim.now == pytest.approx(3 * 1000 * 8 / mbps(10))

    def test_queue_overflow_drops_excess(self):
        sim, a, b, _ = _pair(rate=mbps(10), queue_packets=2)
        # One packet in flight + two queued fit; the rest are dropped.
        for _ in range(10):
            a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert b.packets_received == 3
        assert a.ports[0].queue.packets_dropped_total == 7

    def test_link_down_drops_packets(self):
        sim, a, b, link = _pair()
        link.set_down()
        packet = udp_packet("a", "b", 100)
        assert a.send(packet) is False
        assert packet.dropped
        link.set_up()
        assert a.send(udp_packet("a", "b", 100)) is True

    def test_counters_updated(self):
        sim, a, b, link = _pair()
        a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert a.ports[0].tx_packets == 1
        assert a.ports[0].tx_bytes == 1000
        assert b.ports[0].rx_packets == 1
        assert link.total_packets == 1
