"""Tests for the dataplane flight recorder (repro.obs.flightrec).

Covers the record/query core (journeys, flow traces, ring-buffer
overwrite accounting, flow sampling), drop forensics — one test per
``drops_by_reason`` category, including the ``deliver_burst``
send-vs-receive asymmetry — the session-layer integration (the
``.flight_recorder(...)`` declaration, spec round-trip, sweep axes, and
the sweep-worker pickle round-trip of ``journey()``/``explain_drop``),
the Perfetto network-timeline export (validated against
``tools/check_trace_schema.py``, plus the checker's counter-event and
per-track metadata rules), and the load-bearing invariant end to end:

* **Recorder off is byte-identical** — every app scenario in the repo
  runs with the recorder off and on, and both land on the identical
  simulator event total and identical canonical
  :class:`~repro.session.ResultSummary` JSON.
"""

import importlib.util
import json
import pickle
import re
from pathlib import Path

import pytest

from repro.net import mbps
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import udp_packet
from repro.net.port import (DROP_CORRUPTED, DROP_LINK_DOWN, DROP_PEER_DOWN,
                            DROP_QUEUE_OVERFLOW)
from repro.net.sim import Simulator
from repro.obs import (FlightRecorder, RecorderSpec, Telemetry,
                       network_trace_events, trace_events,
                       write_network_trace)
from repro.obs.flightrec import (DELIVER, DROP, ENQUEUE, FAULT, HOST_SEND,
                                 REC_A, REC_B, REC_KIND, REC_SEQ, REC_SITE,
                                 SWITCH_RECV, TPP_EXEC, JourneyLog)
from repro.session import ResultSummary, Scenario
from repro.session.spec import SpecError
from repro.sweep import SweepRunner, SweepSpec


def _load_trace_checker():
    path = Path(__file__).resolve().parent.parent / "tools" / "check_trace_schema.py"
    spec = importlib.util.spec_from_file_location("check_trace_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_trace_schema = _load_trace_checker()


def _pair(rate=mbps(100), delay=1e-6, queue_bytes=512 * 1024,
          queue_packets=None, spec=None):
    """A recorded two-host micro-topology: sim, hosts a/b, link, recorder."""
    sim = Simulator()
    a, b = Host(sim, "a"), Host(sim, "b")
    pa = a.add_port(queue_bytes, queue_packets)
    pb = b.add_port(queue_bytes, queue_packets)
    link = Link(pa, pb, rate_bps=rate, delay_s=delay)
    recorder = FlightRecorder(spec).attach_nodes(sim, [a, b])
    return sim, a, b, link, recorder


# ---------------------------------------------------------------------------
# RecorderSpec validation
# ---------------------------------------------------------------------------
class TestRecorderSpec:
    def test_defaults(self):
        spec = RecorderSpec()
        assert spec.capacity == 4096
        assert spec.sample_every == 1
        assert spec.apps is None and spec.links is None

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0}, {"capacity": -1}, {"sample_every": 0},
        {"apps": "netsight"}, {"links": "a<->b"},       # bare strings
        {"apps": ()}, {"links": []},                    # empty filters
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecorderSpec(**kwargs)

    def test_filters_normalised_to_tuples(self):
        spec = RecorderSpec(apps=["x"], links=("l1", "l2"))
        assert spec.apps == ("x",)
        assert spec.links == ("l1", "l2")

    def test_picklable(self):
        spec = RecorderSpec(capacity=128, sample_every=4, apps=("x",))
        assert pickle.loads(pickle.dumps(spec)) == spec


# ---------------------------------------------------------------------------
# Journeys and the query API
# ---------------------------------------------------------------------------
class TestJourneys:
    def test_full_lifecycle_recorded_in_order(self):
        sim, a, b, link, recorder = _pair()
        b.default_listener = lambda p: None
        packet = udp_packet("a", "b", 100)
        sim.schedule(0.0, a.send, packet)
        sim.run(until=1.0)
        journey = recorder.journey(packet.packet_id)
        assert journey is not None
        kinds = [record[REC_KIND] for record in journey.records]
        assert kinds == ["host-send", "enqueue", "dequeue", "deliver"]
        assert journey.hops == ["a", "b"]
        assert journey.delivered and not journey.dropped
        assert journey.drop_reason is None
        seqs = [record[REC_SEQ] for record in journey.records]
        assert seqs == sorted(seqs)

    def test_unknown_packet_returns_none(self):
        _, _, _, _, recorder = _pair()
        assert recorder.journey(999_999) is None

    def test_trace_flow_groups_by_flow(self):
        sim, a, b, link, recorder = _pair()
        flows = {7: 3, 8: 2}
        for flow_id, count in flows.items():
            for index in range(count):
                sim.schedule(0.001 * (flow_id + index),
                             a.send, udp_packet("a", "b", 50, flow_id=flow_id))
        sim.run(until=1.0)
        for flow_id, count in flows.items():
            journeys = recorder.trace_flow(flow_id)
            assert len(journeys) == count
            assert all(j.flow_id == flow_id for j in journeys)

    def test_log_pickles_and_queries_identically(self):
        sim, a, b, link, recorder = _pair()
        packet = udp_packet("a", "b", 100)
        sim.schedule(0.0, a.send, packet)
        sim.run(until=1.0)
        log = recorder.log()
        clone = pickle.loads(pickle.dumps(log))
        assert clone.records == log.records
        assert clone.stats == log.stats
        assert clone.journey(packet.packet_id).records == \
            log.journey(packet.packet_id).records


# ---------------------------------------------------------------------------
# Sampling and capacity policies
# ---------------------------------------------------------------------------
class TestSampling:
    def _run_flows(self, spec, flows=64, per_flow=2):
        sim, a, b, link, recorder = _pair(spec=spec)
        packets = []
        for flow_id in range(flows):
            for index in range(per_flow):
                packet = udp_packet("a", "b", 50, flow_id=flow_id)
                packets.append(packet)
                sim.schedule(0.0001 * len(packets), a.send, packet)
        sim.run(until=5.0)
        return recorder, packets

    def test_sampling_is_per_flow_and_complete(self):
        recorder, packets = self._run_flows(RecorderSpec(sample_every=4))
        log = recorder.log()
        sampled_flows = {log.journey(p.packet_id).flow_id
                         for p in packets if log.journey(p.packet_id)}
        assert 0 < len(sampled_flows) < 64
        # All-or-none per flow: a sampled flow has every packet's complete
        # journey; an unsampled flow has no records at all.
        for packet in packets:
            journey = log.journey(packet.packet_id)
            if packet.flow_id in sampled_flows:
                assert journey is not None and len(journey.records) == 4
            else:
                assert journey is None
        stats = recorder.stats()
        assert stats["flows_seen"] == 64
        assert stats["flows_sampled"] == len(sampled_flows)

    def test_sampling_is_deterministic_across_recorders(self):
        first, _ = self._run_flows(RecorderSpec(sample_every=4))
        second, _ = self._run_flows(RecorderSpec(sample_every=4))
        # Drop seq and packet_id (both are process-global counters); the
        # sampled *content* — times, nodes, kinds, flows, sites — must match.
        key = lambda rec: rec[1:4] + rec[5:]
        assert sorted(map(key, first.log().records)) == \
            sorted(map(key, second.log().records))

    def test_capacity_overwrites_are_accounted(self):
        spec = RecorderSpec(capacity=8)
        sim, a, b, link, recorder = _pair(spec=spec)
        for index in range(20):
            sim.schedule(0.0001 * index, a.send, udp_packet("a", "b", 50))
        sim.run(until=1.0)
        stats = recorder.stats()
        assert stats["records_written"] > stats["records_retained"]
        assert stats["records_overwritten"] == \
            stats["records_written"] - stats["records_retained"]
        assert all(len(ring) <= 8 for ring in recorder._rings.values())

    def test_off_means_no_taps(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        pa, pb = a.add_port(), b.add_port()
        Link(pa, pb, rate_bps=mbps(100))
        assert a.recorder is None and pa.recorder is None


# ---------------------------------------------------------------------------
# Drop forensics: one test per drops_by_reason category
# ---------------------------------------------------------------------------
class TestDropForensics:
    def test_queue_overflow_names_the_port(self):
        sim, a, b, link, recorder = _pair(queue_packets=1)
        b.default_listener = lambda p: None
        packets = [udp_packet("a", "b", 1000) for _ in range(4)]
        for packet in packets:                  # one burst: head transmits,
            a.send(packet)                      # one queues, the rest drop
        sim.run(until=1.0)
        drops = recorder.explain_drop(category=DROP_QUEUE_OVERFLOW)
        assert len(drops) == 2
        for explanation in drops:
            assert explanation.site == "a.p0"
            assert explanation.category == DROP_QUEUE_OVERFLOW
            assert explanation.reason == "queue overflow at a.p0"
            assert explanation.records[-1][REC_KIND] == DROP
        # The per-packet path: journey ends in the drop, never delivers.
        journey = recorder.journey(drops[0].packet_id)
        assert journey.dropped and not journey.delivered

    def test_link_down_names_the_sending_port(self):
        sim, a, b, link, recorder = _pair()
        link.set_down()
        packet = udp_packet("a", "b", 100)
        a.send(packet)
        explanation = recorder.explain_drop(packet.packet_id)
        assert explanation is not None
        assert explanation.site == "a.p0"
        assert explanation.category == DROP_LINK_DOWN
        assert explanation.reason == "link down at a.p0"
        # The set_down fault on this link is surfaced as context.
        assert explanation.fault_context is not None
        assert explanation.fault_context[REC_KIND] == FAULT
        assert explanation.fault_context[REC_A] == "set-down"

    def test_peer_down_names_the_sending_port(self):
        sim, a, b, link, recorder = _pair()
        packet = udp_packet("a", "b", 100)
        sim.schedule(0.0, a.send, packet)
        b.ports[0].up = False                   # fails during propagation
        sim.run(until=1.0)
        explanation = recorder.explain_drop(packet.packet_id)
        assert explanation is not None
        # Peer-down is counted at the *sender*: the downed receive side
        # never saw the packet (mirrors Port._deliver_to_peer accounting).
        assert explanation.site == "a.p0"
        assert explanation.category == DROP_PEER_DOWN
        assert explanation.reason == "peer port down"

    def test_corruption_names_the_receiving_port(self):
        sim, a, b, link, recorder = _pair()
        link.set_loss(1.0)
        packet = udp_packet("a", "b", 100)
        sim.schedule(0.0, a.send, packet)
        sim.run(until=1.0)
        explanation = recorder.explain_drop(packet.packet_id)
        assert explanation is not None
        # Corruption is a failed CRC at the *receiver* — the tx/rx deficit
        # the loss-localization TPP measures.
        assert explanation.site == "b.p0"
        assert explanation.category == DROP_CORRUPTED
        assert "corrupted on" in explanation.reason
        assert explanation.fault_context is not None
        assert explanation.fault_context[REC_A] == "set-loss"

    def test_deliver_burst_send_vs_receive_asymmetry(self):
        # Send-side failure (link down): recorded at from_port, like the
        # counters — nothing serialised, nothing at the peer.
        sim, a, b, link, recorder = _pair()
        link.set_down()
        packets = [udp_packet("a", "b", 100) for _ in range(3)]
        assert link.deliver_burst(packets, a.ports[0]) == 0
        for packet in packets:
            explanation = recorder.explain_drop(packet.packet_id)
            assert explanation.site == "a.p0"
            assert explanation.category == DROP_LINK_DOWN

        # Receive-side failure (corruption): the burst crossed the wire,
        # so the drop is recorded at the peer port instead.
        sim2, a2, b2, link2, recorder2 = _pair()
        link2.set_loss(1.0)
        packets2 = [udp_packet("a", "b", 100) for _ in range(3)]
        assert link2.deliver_burst(packets2, a2.ports[0]) == 0
        for packet in packets2:
            explanation = recorder2.explain_drop(packet.packet_id)
            assert explanation.site == "b.p0"
            assert explanation.category == DROP_CORRUPTED

        # Receive-side failure (peer down): serialised then lost; counted
        # (and recorded) at the sender, same as _deliver_to_peer.
        sim3, a3, b3, link3, recorder3 = _pair()
        b3.ports[0].up = False
        packets3 = [udp_packet("a", "b", 100) for _ in range(3)]
        assert link3.deliver_burst(packets3, a3.ports[0]) == 0
        for packet in packets3:
            explanation = recorder3.explain_drop(packet.packet_id)
            assert explanation.site == "a.p0"
            assert explanation.category == DROP_PEER_DOWN

    def test_drops_bypass_flow_sampling(self):
        spec = RecorderSpec(sample_every=1_000_000)   # samples ~no flows
        sim, a, b, link, recorder = _pair(queue_packets=1, spec=spec)
        packets = [udp_packet("a", "b", 1000, flow_id=i) for i in range(6)]
        for packet in packets:
            a.send(packet)
        sim.run(until=1.0)
        drops = recorder.explain_drop(category=DROP_QUEUE_OVERFLOW)
        assert len(drops) == 4                   # forensics stay complete
        # ... while the happy path recorded (at most) nothing.
        assert recorder.log().drops() == \
            [j.records[-1] for j in map(recorder.journey,
                                        [d.packet_id for d in drops])]

    def test_explain_drop_filters(self):
        sim, a, b, link, recorder = _pair(queue_packets=1)
        for index in range(4):
            a.send(udp_packet("a", "b", 1000))
        sim.run(until=1.0)
        assert recorder.explain_drop(category="no-such-category") == []
        assert recorder.explain_drop(site="z9") == []
        by_site = recorder.explain_drop(site="a.p0")
        assert len(by_site) == 2
        # A delivered packet has no drop explanation.
        delivered = [p for p in recorder.log().packets()
                     if recorder.journey(p).delivered]
        assert recorder.explain_drop(delivered[0]) is None


# ---------------------------------------------------------------------------
# Session integration
# ---------------------------------------------------------------------------
def _scenario():
    return (Scenario(topology="dumbbell", seed=1, hosts_per_side=2)
            .tpp("qmon",
                 "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]",
                 sample_frequency=1)
            .workload("messages", offered_load=0.3, message_bytes=5_000))


class TestSessionIntegration:
    def test_result_side_channels(self):
        result = _scenario().flight_recorder(capacity=1024).run(duration_s=0.1)
        assert result.flightrec is not None
        assert result.flightrec["records_written"] > 0
        assert isinstance(result.journeys, JourneyLog)
        kinds = {record[REC_KIND] for record in result.journeys.records}
        assert {HOST_SEND, ENQUEUE, DELIVER, SWITCH_RECV, TPP_EXEC} <= kinds
        # TPP execution outcomes carry the status label and executed count.
        execs = [r for r in result.journeys.records if r[REC_KIND] == TPP_EXEC]
        assert all(r[REC_A] == "ok" and r[REC_B] == 2 for r in execs)

    def test_no_recorder_means_no_side_channels(self):
        result = _scenario().run(duration_s=0.05)
        assert result.flightrec is None and result.journeys is None
        with pytest.raises(TypeError, match="flight_recorder"):
            result.journey(1)

    def test_summary_side_channel_excluded_from_canonical_json(self):
        result = _scenario().flight_recorder().run(duration_s=0.05)
        summary = ResultSummary.from_result(result)
        assert summary.flightrec == result.flightrec
        assert summary.journeys is result.journeys
        rendered = summary.as_jsonable()
        assert "flightrec" not in rendered and "journeys" not in rendered

    def test_spec_round_trip(self):
        scenario = _scenario().flight_recorder(capacity=256, sample_every=8)
        spec = scenario.to_spec()
        assert spec.recorder == scenario.recorder_spec
        rebuilt = pickle.loads(pickle.dumps(spec)).to_scenario()
        assert rebuilt.recorder_spec == scenario.recorder_spec
        # The recorder changes the spec's identity but not the run's bytes.
        assert spec.fingerprint() != _scenario().to_spec().fingerprint()

    def test_spec_kwargs_conflict_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            _scenario().flight_recorder(RecorderSpec(), capacity=10)
        with pytest.raises(TypeError):
            _scenario().flight_recorder("everything")

    def test_unknown_app_filter_fails_at_build(self):
        scenario = _scenario().flight_recorder(apps=["nope"])
        with pytest.raises(ValueError, match="nope"):
            scenario.run(duration_s=0.05)

    def test_app_filter_records_only_tpp_carriers(self):
        # Sparse TPP sampling (1-in-4 packets instrumented) so the app
        # filter has non-carriers to exclude.
        def sparse():
            return (Scenario(topology="dumbbell", seed=1, hosts_per_side=2)
                    .tpp("qmon",
                         "PUSH [Switch:SwitchID]\n"
                         "PUSH [Queue:QueueOccupancy]",
                         sample_frequency=4)
                    .workload("messages", offered_load=0.3,
                              message_bytes=5_000))

        result = sparse().flight_recorder(apps=["qmon"]).run(duration_s=0.1)
        assert result.flightrec["records_written"] > 0
        # Host-send records exist only for packets that carried the TPP.
        sends = [r for r in result.journeys.records
                 if r[REC_KIND] == HOST_SEND]
        assert sends
        unfiltered = sparse().flight_recorder().run(duration_s=0.1)
        assert result.flightrec["records_written"] < \
            unfiltered.flightrec["records_written"]

    def test_link_filter_taps_matching_ports_only(self):
        unfiltered = _scenario().flight_recorder().run(duration_s=0.05)
        some_link = sorted(link.name
                           for link in unfiltered.network.links)[0]
        result = _scenario().flight_recorder(links=[some_link]) \
            .run(duration_s=0.05)
        assert result.flightrec["ports_tapped"] == 2
        port_sites = {r[REC_SITE] for r in result.journeys.records
                      if r[REC_KIND] in (ENQUEUE, DELIVER)}
        # Port sites ("h0.p0") belong to the link's two endpoint nodes.
        endpoints = set(some_link.split("<->"))
        assert port_sites
        assert {site.split(".")[0] for site in port_sites} <= endpoints

    def test_recorder_axis_sweeps(self):
        plan = SweepSpec(_scenario().flight_recorder()) \
            .axis("recorder.sample_every", [1, 8])
        labels = [task.label for task in plan.expand()]
        assert labels == ["recorder.sample_every=1", "recorder.sample_every=8"]
        with pytest.raises(SpecError, match="RecorderSpec has no field"):
            SweepSpec(_scenario()).axis("recorder.nope", [1])

    def test_journeys_round_trip_through_sweep_workers(self):
        # workers=2 forces the pickle boundary: specs ship out, summaries
        # (JourneyLog included) ship home, and the query API must work in
        # the parent process.
        runner = SweepRunner(workers=2, duration_s=0.1)
        plan = SweepSpec(_scenario().flight_recorder(capacity=2048)) \
            .replicate([1, 2])
        result = runner.run(plan)
        assert len(result.completed) == 2
        for outcome in result.completed:
            summary = outcome.summary
            assert summary.flightrec["records_written"] > 0
            packet_id = summary.journeys.packets()[0]
            journey = summary.journey(packet_id)
            assert journey is not None and journey.records
            assert summary.trace_flow(journey.flow_id)
            assert isinstance(summary.explain_drop(), list)


# ---------------------------------------------------------------------------
# Perfetto network export + schema checker extensions
# ---------------------------------------------------------------------------
class TestNetworkTraceExport:
    def _log(self):
        sim, a, b, link, recorder = _pair()
        for index in range(8):
            sim.schedule(0.0001 * index,
                         a.send, udp_packet("a", "b", 500, flow_id=index % 2))
        sim.run(until=1.0)
        return recorder.log()

    def test_counters_and_lifelines_emitted(self, tmp_path):
        log = self._log()
        path = tmp_path / "net.json"
        trace = write_network_trace(log, path)
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "C"}
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"].startswith("queue ") for e in counters)
        assert any(e["name"].startswith("util ") for e in counters)
        queue_args = next(e["args"] for e in counters
                          if e["name"].startswith("queue "))
        assert set(queue_args) == {"packets", "bytes"}
        # Every slice track is named; the file validates.
        assert check_trace_schema.validate_trace(trace) == []
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert check_trace_schema.validate_trace(loaded) == []

    def test_empty_log_is_metadata_only_and_valid(self):
        events = network_trace_events(JourneyLog([], {}))
        assert len(events) == 1 and events[0]["ph"] == "M"
        assert check_trace_schema.validate_trace(
            {"traceEvents": events}) == []

    def test_empty_telemetry_trace_validates(self):
        telemetry = Telemetry()
        events = trace_events(telemetry)
        assert [event["ph"] for event in events] == ["M"]
        assert check_trace_schema.validate_trace(
            {"traceEvents": events}) == []

    def test_zero_duration_span_trace_validates(self):
        telemetry = Telemetry(clock=lambda: 1.0)   # frozen clock: dur == 0
        with telemetry.span("instant"):
            pass
        events = trace_events(telemetry)
        span_events = [event for event in events if event["ph"] == "X"]
        assert span_events and span_events[0]["dur"] == 0
        assert check_trace_schema.validate_trace(
            {"traceEvents": events}) == []

    def test_checker_rejects_bad_counters_and_unnamed_tracks(self):
        base = {"name": "q", "ph": "C", "ts": 0.0, "pid": 1, "tid": 0}
        assert check_trace_schema.validate_trace(
            {"traceEvents": [dict(base, args={})]})
        assert check_trace_schema.validate_trace(
            {"traceEvents": [dict(base, args={"v": "high"})]})
        assert check_trace_schema.validate_trace(
            {"traceEvents": [dict(base, args={"v": float("inf")})]})
        assert check_trace_schema.validate_trace({"traceEvents": [
            {"name": "s", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 3},
        ]})
        # ... and accepts a well-formed counter on a named track.
        assert check_trace_schema.validate_trace({"traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 3,
             "args": {"name": "s1"}},
            {"name": "s", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 3},
            dict(base, args={"v": 1.5}),
        ]}) == []


# ---------------------------------------------------------------------------
# The recorder differential: every app, off vs on — byte-identical
# ---------------------------------------------------------------------------
def _app_rows():
    """(name, scenario factory, duration) for every app in the repo."""
    from repro.apps.conga import conga_scenario
    from repro.apps.microburst import microburst_scenario
    from repro.apps.netsight import netsight_scenario
    from repro.apps.netverify import verification_scenario
    from repro.apps.rcp import ALPHA_MAXMIN, rcp_scenario
    from repro.apps.sketches import sketch_scenario

    return [
        ("microburst",
         lambda: microburst_scenario(link_rate_bps=mbps(10),
                                     offered_load=0.4, seed=3), 0.125),
        ("netsight",
         lambda: netsight_scenario(link_rate_bps=mbps(10), seed=2), 0.1),
        ("sketches",
         lambda: sketch_scenario(num_leaves=2, num_spines=1,
                                 hosts_per_leaf=2, seed=2), 0.2),
        ("rcp",
         lambda: rcp_scenario(alpha=ALPHA_MAXMIN, link_rate_bps=mbps(10)),
         0.5),
        ("conga",
         lambda: conga_scenario("conga", link_rate_bps=mbps(10)), 0.5),
        ("netverify", verification_scenario, 0.175),
    ]


def _canonical_view(summary: ResultSummary) -> str:
    """Sorted canonical JSON with object addresses masked (as in
    tests/test_obs.py: some sketch parts repr-render)."""
    view = json.dumps(summary.as_jsonable(), sort_keys=True)
    return re.sub(r"0x[0-9a-f]+", "0x-", view)


class TestRecorderDifferential:
    @pytest.mark.parametrize("name,factory,duration",
                             _app_rows(),
                             ids=[row[0] for row in _app_rows()])
    def test_recorder_off_vs_on_identical(self, tmp_path, name, factory,
                                          duration):
        def run(recorded):
            scenario = factory()
            if recorded:
                scenario.flight_recorder(capacity=4096)
            result = scenario.build(duration).run(duration)
            return result, ResultSummary.from_result(result)

        off_result, off_summary = run(recorded=False)
        on_result, on_summary = run(recorded=True)

        assert off_result.events_executed == on_result.events_executed
        assert _canonical_view(off_summary) == _canonical_view(on_summary)
        assert off_result.journeys is None
        assert on_result.journeys is not None and on_result.journeys.records
        # The on-run's journeys export to a schema-valid network timeline.
        trace_path = tmp_path / f"{name}.json"
        trace = write_network_trace(on_result.journeys, trace_path)
        assert check_trace_schema.validate_trace(trace) == []
