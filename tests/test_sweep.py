"""Tests for the sweep layer (repro.sweep + repro.session.spec).

Covers the spec-serialization contract (round-trip byte-identity across a
pickle boundary, eager rejection of unpicklable hooks), sweep-plan
expansion (grid / zip / seed replication, axis validation, duplicate
detection), the differential guarantee (a multi-worker sweep's canonical
artifact is byte-identical to the serial run), failure paths (worker
exceptions, crashes, timeouts, retry accounting), and the resumable
manifest (completed fingerprints are skipped, artifacts stay identical).
"""

import json
import os
import pickle
import time

import pytest

from repro.session import (ResultSummary, Scenario, ScenarioSpec, SpecError,
                           register_workload)
from repro.sweep import SweepRunner, SweepSpec, SweepTask

#: Simulated seconds per experiment in the differential tests — tiny, the
#: point is orchestration, not the physics.
DT = 0.05


# Module-level workloads (picklable by registry name, inherited by forked
# sweep workers) used to provoke the runner's failure paths.
@register_workload("sweep-test-explode")
def exploding_workload(experiment, *, message: str = "kaboom"):
    raise RuntimeError(message)


@register_workload("sweep-test-crash")
def crashing_workload(experiment):
    os._exit(3)                                   # hard worker death


@register_workload("sweep-test-sleepy")
def sleepy_workload(experiment, *, sleep_s: float = 3.0):
    time.sleep(sleep_s)                           # wall-clock stall
    return 0


def monitor_scenario(seed: int = 1, load: float = 0.2) -> Scenario:
    return (Scenario("dumbbell", seed=seed, name="sweep-test", hosts_per_side=2)
            .tpp("mon", "PUSH [Queue:QueueOccupancy]", num_hops=6,
                 sample_frequency=2)
            .workload("messages", offered_load=load))


def workload_scenario(workload: str, **kwargs) -> Scenario:
    built = Scenario("dumbbell", seed=1, name=f"sweep-{workload}",
                     hosts_per_side=1)
    return built.workload(workload, **kwargs)


class TestScenarioSpec:
    def test_round_trip_is_byte_identical(self):
        spec = monitor_scenario().to_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert spec.fingerprint() == clone.fingerprint()
        a = monitor_scenario().run(duration_s=DT)
        b = clone.to_scenario().run(duration_s=DT)
        assert a.events_executed == b.events_executed
        assert a.tpps_received == b.tpps_received

    def test_spec_run_matches_builder_run(self):
        direct = monitor_scenario().run(duration_s=DT)
        via_spec = monitor_scenario().to_spec().run(duration_s=DT)
        assert direct.events_executed == via_spec.events_executed

    def test_lambda_hooks_rejected_eagerly(self):
        bad = monitor_scenario().setup(lambda experiment: None)
        with pytest.raises(SpecError, match="lambda"):
            bad.to_spec()

    def test_closure_hooks_rejected_eagerly(self):
        limit = 3

        def closure_hook(experiment):
            return limit

        bad = monitor_scenario().setup(closure_hook)
        with pytest.raises(SpecError, match="defined inside a function"):
            bad.to_spec()

    def test_from_spec_round_trips_through_scenario(self):
        spec = monitor_scenario().to_spec()
        again = Scenario.from_spec(spec).to_spec()
        assert spec.fingerprint() == again.fingerprint()

    @pytest.mark.parametrize("maker", [
        "microburst_scenario", "rcp_scenario", "conga_scenario",
        "sketch_scenario", "netsight_scenario"])
    def test_app_scenarios_are_spec_serializable(self, maker):
        import repro.apps.conga
        import repro.apps.microburst
        import repro.apps.netsight
        import repro.apps.rcp
        import repro.apps.sketches
        for module in (repro.apps.microburst, repro.apps.rcp, repro.apps.conga,
                       repro.apps.sketches, repro.apps.netsight):
            if hasattr(module, maker):
                spec = getattr(module, maker)().to_spec()
                clone = pickle.loads(pickle.dumps(spec))
                assert spec.fingerprint() == clone.fingerprint()
                return
        pytest.fail(f"no app module defines {maker}")

    def test_result_summary_is_picklable_and_mergeable(self):
        summary = ResultSummary.from_result(monitor_scenario().run(duration_s=DT))
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.as_jsonable() == summary.as_jsonable()
        merged = summary.bundle()
        merged.merge(clone.bundle())
        assert merged["experiment-counters"]["experiments"] == 2
        assert merged["experiment-counters"]["events_executed"] == \
            2 * summary.counters["events_executed"]


class TestSweepSpec:
    def test_grid_expansion_order_and_labels(self):
        sweep = (SweepSpec(monitor_scenario())
                 .axis("workload.messages.offered_load", [0.1, 0.2])
                 .axis("seed", [1, 2]))
        tasks = sweep.expand()
        assert len(sweep) == len(tasks) == 4
        assert [t.label for t in tasks] == [
            "workload.messages.offered_load=0.1,seed=1",
            "workload.messages.offered_load=0.1,seed=2",
            "workload.messages.offered_load=0.2,seed=1",
            "workload.messages.offered_load=0.2,seed=2"]
        assert len({t.fingerprint for t in tasks}) == 4

    def test_zip_mode_locksteps_axes(self):
        sweep = (SweepSpec(monitor_scenario(), mode="zip")
                 .axis("seed", [1, 2, 3])
                 .axis("workload.messages.offered_load", [0.1, 0.2, 0.3]))
        assert len(sweep.expand()) == 3

    def test_zip_mode_rejects_unequal_axes(self):
        sweep = (SweepSpec(monitor_scenario(), mode="zip")
                 .axis("seed", [1, 2])
                 .axis("workload.messages.offered_load", [0.1]))
        with pytest.raises(ValueError, match="equal-length"):
            sweep.expand()

    def test_replicate_expands_from_base_seed(self):
        tasks = SweepSpec(monitor_scenario(seed=5)).replicate(3).expand()
        assert [t.spec.seed for t in tasks] == [5, 6, 7]

    def test_axis_paths_validate_eagerly(self):
        sweep = SweepSpec(monitor_scenario())
        with pytest.raises(SpecError, match="unknown root"):
            sweep.axis("nonsense.path", [1])
        with pytest.raises(SpecError, match="no declared workload"):
            sweep.axis("workload.nope.rate", [1])
        with pytest.raises(SpecError, match="no declared TPP"):
            sweep.axis("tpp.nope.num_hops", [1])
        with pytest.raises(SpecError, match="CollectorSpec has no"):
            sweep.axis("collector.nope", [1])

    def test_duplicate_points_rejected(self):
        sweep = (SweepSpec(monitor_scenario())
                 .axis("seed", [1])
                 .axis("name", ["same", "same"]))
        with pytest.raises(ValueError, match="identical specs"):
            sweep.expand()

    def test_tpp_and_collector_axes_apply(self):
        base = monitor_scenario()
        base.collector(shards=1, transport="inline")
        tasks = (SweepSpec(base)
                 .axis("tpp.mon.sample_frequency", [1, 4])
                 .axis("collector.shards", [1, 2])).expand()
        assert len(tasks) == 4
        assert tasks[-1].spec.tpps[0].sample_frequency == 4
        assert tasks[-1].spec.collector.shards == 2

    def test_nested_collector_axes_apply(self):
        from repro.collect import ShedSpec, TreeSpec
        base = monitor_scenario()
        base.collector(shards=4)
        tasks = (SweepSpec(base)
                 .axis("collector.tree.fanin", [2, 3])
                 .axis("collector.shed.policy", ["drop-oldest", "sample"])
                 .axis("collector.delta", [False, True])).expand()
        assert len(tasks) == 8
        last = tasks[-1].spec.collector
        assert last.tree == TreeSpec(fanin=3)
        assert last.shed == ShedSpec(policy="sample")
        assert last.delta is True
        # Sibling tasks never alias sub-specs: the first task kept fanin 2.
        assert tasks[0].spec.collector.tree == TreeSpec(fanin=2)
        assert tasks[0].spec.collector.delta is False

    def test_nested_collector_axis_paths_validate(self):
        base = monitor_scenario()
        base.collector(shards=2)
        sweep = SweepSpec(base)
        with pytest.raises(SpecError, match="TreeSpec has no"):
            sweep.axis("collector.tree.nope", [1])
        with pytest.raises(SpecError, match="ShedSpec has no"):
            sweep.axis("collector.shed.nope", [1])
        with pytest.raises(SpecError, match="collector.<field>"):
            sweep.axis("collector.tree.fanin.extra", [1])

    def test_top_level_tree_and_shed_values_normalise(self):
        from repro.collect import ShedSpec, TreeSpec
        base = monitor_scenario()
        base.collector(shards=4)
        tasks = (SweepSpec(base)
                 .axis("collector.tree", [None, 2])
                 .axis("collector.shed", [None, "drop-oldest"])).expand()
        specs = [t.spec.collector for t in tasks]
        assert specs[0].tree is None and specs[0].shed is None
        assert specs[-1].tree == TreeSpec(fanin=2)
        assert specs[-1].shed == ShedSpec(policy="drop-oldest")


class TestSweepDifferential:
    def test_parallel_sweeps_are_byte_identical_to_serial(self):
        """The acceptance gate: >= 16 specs, 2- and 4-worker runs render the
        byte-identical canonical artifact to the serial reference."""
        sweep = (SweepSpec(monitor_scenario())
                 .axis("workload.messages.offered_load", [0.1, 0.2, 0.3, 0.4])
                 .replicate(4))
        tasks = sweep.expand()
        assert len(tasks) >= 16
        reference = SweepRunner(workers=1, duration_s=DT).run(tasks)
        assert len(reference.completed) == len(tasks)
        for workers in (2, 4):
            parallel = SweepRunner(workers=workers, duration_s=DT).run(tasks)
            assert parallel.canonical_json() == reference.canonical_json(), \
                f"artifact diverged at {workers} workers"
        merged = reference.merged_bundle()
        assert merged["experiment-counters"]["experiments"] == len(tasks)

    def test_streaming_outcomes_arrive_incrementally(self):
        sweep = SweepSpec(monitor_scenario()).replicate(3)
        seen = []
        result = SweepRunner(workers=2, duration_s=DT).run(
            sweep, on_outcome=seen.append)
        assert sorted(o.label for o in result.outcomes) == \
            sorted(o.label for o in seen)
        assert all(o.status == "done" for o in seen)


class TestFailurePaths:
    def test_worker_exception_is_recorded(self):
        tasks = [SweepTask(index=0, label="boom", overrides={},
                           spec=workload_scenario("sweep-test-explode",
                                                  message="no luck").to_spec())]
        result = SweepRunner(workers=2, duration_s=DT).run(tasks)
        (outcome,) = result.outcomes
        assert outcome.status == "failed"
        assert "no luck" in outcome.error
        assert outcome.attempts == 1

    def test_retry_budget_and_accounting(self):
        tasks = [SweepTask(index=0, label="boom", overrides={},
                           spec=workload_scenario("sweep-test-explode").to_spec())]
        result = SweepRunner(workers=2, duration_s=DT, retries=2).run(tasks)
        (outcome,) = result.outcomes
        assert outcome.status == "failed"
        assert outcome.attempts == 3              # 1 try + 2 retries
        assert result.retries == 2

    def test_serial_runner_records_failures_too(self):
        specs = [workload_scenario("sweep-test-explode").to_spec(),
                 monitor_scenario().to_spec()]
        result = SweepRunner(workers=1, duration_s=DT).run(specs)
        assert [o.status for o in result.outcomes] == ["failed", "done"]

    def test_worker_crash_is_accounted_and_pool_recovers(self):
        specs = [workload_scenario("sweep-test-crash").to_spec(),
                 monitor_scenario().to_spec()]
        result = SweepRunner(workers=2, duration_s=DT).run(specs)
        by_label = {o.label: o for o in result.outcomes}
        crashed = by_label["sweep-sweep-test-crash#0"]
        assert crashed.status == "failed" and "crashed" in crashed.error
        assert by_label["sweep-test#1"].status == "done"
        assert result.worker_crashes >= 1
        assert result.pool_restarts >= 1

    def test_timeout_kills_the_task_not_the_sweep(self):
        specs = [workload_scenario("sweep-test-sleepy", sleep_s=30.0).to_spec(),
                 monitor_scenario().to_spec()]
        result = SweepRunner(workers=2, duration_s=DT, timeout_s=0.5).run(specs)
        by_label = {o.label: o for o in result.outcomes}
        timed_out = by_label["sweep-sweep-test-sleepy#0"]
        assert timed_out.status == "timeout"
        assert "0.5" in timed_out.error
        assert by_label["sweep-test#1"].status == "done"


class TestResumableManifest:
    def test_resume_skips_completed_and_artifact_is_identical(self, tmp_path):
        sweep = SweepSpec(monitor_scenario()).replicate(4)
        first = SweepRunner(workers=1, duration_s=DT,
                            manifest_dir=tmp_path).run(sweep)
        assert first.skipped_from_manifest == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert len(manifest["tasks"]) == 4
        assert all(entry["status"] == "done"
                   for entry in manifest["tasks"].values())

        second = SweepRunner(workers=1, duration_s=DT,
                             manifest_dir=tmp_path).run(sweep)
        assert second.skipped_from_manifest == 4
        assert all(o.source == "manifest" for o in second.outcomes)
        assert second.canonical_json() == first.canonical_json()
        assert (tmp_path / "artifact.json").read_text() == first.canonical_json()

    def test_failed_tasks_are_retried_on_resume(self, tmp_path):
        specs = [workload_scenario("sweep-test-explode").to_spec(),
                 monitor_scenario().to_spec()]
        first = SweepRunner(workers=1, duration_s=DT,
                            manifest_dir=tmp_path).run(specs)
        assert [o.status for o in first.outcomes] == ["failed", "done"]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        statuses = sorted(entry["status"] for entry in manifest["tasks"].values())
        assert statuses == ["done", "failed"]
        assert manifest["accounting"]["failed"] == 1

        second = SweepRunner(workers=1, duration_s=DT,
                             manifest_dir=tmp_path).run(specs)
        assert second.skipped_from_manifest == 1   # only the success skips
        retried = [o for o in second.outcomes if o.source == "run"]
        assert len(retried) == 1 and retried[0].status == "failed"

    def test_manifest_grows_incrementally(self, tmp_path):
        sweep = SweepSpec(monitor_scenario()).replicate(2)
        sizes = []

        def on_outcome(outcome):
            manifest = json.loads((tmp_path / "manifest.json").read_text())
            sizes.append(len(manifest["tasks"]))

        SweepRunner(workers=1, duration_s=DT,
                    manifest_dir=tmp_path).run(sweep, on_outcome=on_outcome)
        assert sizes == [1, 2]
