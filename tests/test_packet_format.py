"""Tests for the TPP wire format (header, packet memory, encode/decode)."""

import pytest

from repro.core.exceptions import CapacityError, EncodingError
from repro.core.isa import Instruction, Opcode
from repro.core.packet_format import (AddressingMode, DEFAULT_WORD_BYTES,
                                      MAX_PACKET_MEMORY_BYTES, TPP, TPP_HEADER_BYTES,
                                      checksum16, make_tpp)


def _push_program(n=3):
    return [Instruction(Opcode.PUSH, address=i) for i in range(n)]


class TestConstruction:
    def test_header_is_twelve_bytes(self):
        assert TPP_HEADER_BYTES == 12

    def test_wire_length_matches_paper_microburst_overhead(self):
        # §2.1: 12 B header + 12 B instructions + 6 B/hop * 5 hops = 54 B.
        tpp = make_tpp(_push_program(3), num_hops=5)
        assert tpp.wire_length() == 54

    def test_instruction_limit_enforced(self):
        with pytest.raises(CapacityError):
            make_tpp(_push_program(6), num_hops=2)

    def test_instruction_limit_can_be_raised_explicitly(self):
        tpp = make_tpp(_push_program(6), num_hops=2, max_instructions=8)
        assert len(tpp.instructions) == 6

    def test_packet_memory_limit_enforced(self):
        with pytest.raises(CapacityError):
            TPP(instructions=_push_program(1),
                memory=bytearray(MAX_PACKET_MEMORY_BYTES + 2))

    def test_invalid_word_size_rejected(self):
        with pytest.raises(EncodingError):
            make_tpp(_push_program(1), num_hops=2, word_bytes=3)

    def test_hop_mode_requires_hop_size(self):
        with pytest.raises(EncodingError):
            TPP(instructions=_push_program(1), memory=bytearray(8),
                mode=AddressingMode.HOP, hop_size=0)

    def test_values_per_hop_default_counts_packet_writers(self):
        tpp = make_tpp(_push_program(3), num_hops=4)
        assert len(tpp.memory) == 3 * DEFAULT_WORD_BYTES * 4

    def test_initial_values_prefill_memory(self):
        tpp = make_tpp([Instruction(Opcode.STORE, 0x1010)], num_hops=2,
                       values_per_hop=2, initial_values=[7, 9, 11, 13])
        assert tpp.all_words()[:4] == [7, 9, 11, 13]

    def test_initial_values_overflow_rejected(self):
        with pytest.raises(CapacityError):
            make_tpp(_push_program(1), num_hops=1, values_per_hop=1,
                     initial_values=[1, 2, 3])


class TestMemoryAccess:
    def test_push_and_pushed_words(self):
        tpp = make_tpp(_push_program(2), num_hops=3)
        assert tpp.push(10) and tpp.push(20)
        assert tpp.pushed_words() == [10, 20]
        assert tpp.stack_pointer == 2 * DEFAULT_WORD_BYTES

    def test_push_beyond_memory_fails_gracefully(self):
        tpp = make_tpp(_push_program(1), num_hops=1)
        assert tpp.push(1)
        assert not tpp.push(2)

    def test_pop_consumes_in_order(self):
        tpp = make_tpp(_push_program(2), num_hops=2, initial_values=[5, 6])
        assert tpp.pop() == 5
        assert tpp.pop() == 6

    def test_values_truncated_to_word_size(self):
        tpp = make_tpp(_push_program(1), num_hops=1, word_bytes=2)
        tpp.push(0x12345)
        assert tpp.pushed_words() == [0x2345]

    def test_hop_addressing(self):
        tpp = make_tpp([Instruction(Opcode.LOAD, 0, packet_offset=0),
                        Instruction(Opcode.LOAD, 1, packet_offset=1)],
                       num_hops=3, mode=AddressingMode.HOP, values_per_hop=2)
        tpp.write_hop_word(0, 111, hop=0)
        tpp.write_hop_word(1, 222, hop=0)
        tpp.write_hop_word(0, 333, hop=2)
        assert tpp.read_hop_word(0, hop=0) == 111
        assert tpp.read_hop_word(1, hop=0) == 222
        assert tpp.read_hop_word(0, hop=2) == 333

    def test_out_of_range_hop_word_is_none(self):
        tpp = make_tpp(_push_program(1), num_hops=2, mode=AddressingMode.HOP)
        assert tpp.read_hop_word(0, hop=5) is None
        assert not tpp.write_hop_word(0, 1, hop=5)

    def test_words_by_hop_stack_mode(self):
        tpp = make_tpp(_push_program(2), num_hops=3)
        for value in (1, 2, 3, 4):
            tpp.push(value)
        assert tpp.words_by_hop(2) == [[1, 2], [3, 4]]

    def test_words_by_hop_hop_mode(self):
        tpp = make_tpp([Instruction(Opcode.LOAD, 0, packet_offset=0)],
                       num_hops=3, mode=AddressingMode.HOP)
        tpp.write_hop_word(0, 9, hop=0)
        tpp.write_hop_word(0, 8, hop=1)
        tpp.hop_number = 2
        assert tpp.words_by_hop(1) == [[9], [8]]

    def test_advance_hop(self):
        tpp = make_tpp(_push_program(1), num_hops=2)
        tpp.advance_hop()
        tpp.advance_hop()
        assert tpp.hop_number == 2


class TestEncodeDecode:
    def test_roundtrip(self):
        tpp = make_tpp(_push_program(3), num_hops=4, app_id=42)
        tpp.push(1234)
        tpp.advance_hop()
        decoded = TPP.decode(tpp.encode())
        assert decoded.instructions == tpp.instructions
        assert decoded.memory == tpp.memory
        assert decoded.app_id == 42
        assert decoded.hop_number == 1
        assert decoded.stack_pointer == tpp.stack_pointer
        assert decoded.mode == tpp.mode
        assert decoded.word_bytes == tpp.word_bytes

    def test_hop_mode_roundtrip(self):
        tpp = make_tpp([Instruction(Opcode.LOAD, 0x1000, packet_offset=0)],
                       num_hops=3, mode=AddressingMode.HOP, word_bytes=4)
        decoded = TPP.decode(tpp.encode())
        assert decoded.mode is AddressingMode.HOP
        assert decoded.hop_size == tpp.hop_size
        assert decoded.word_bytes == 4

    def test_checksum_detects_corruption(self):
        data = bytearray(make_tpp(_push_program(2), num_hops=2).encode())
        data[-1] ^= 0xFF
        with pytest.raises(EncodingError):
            TPP.decode(bytes(data))
        TPP.decode(bytes(data), verify_checksum=False)   # can be bypassed explicitly

    def test_truncated_input_rejected(self):
        encoded = make_tpp(_push_program(2), num_hops=2).encode()
        with pytest.raises(EncodingError):
            TPP.decode(encoded[:8])
        with pytest.raises(EncodingError):
            TPP.decode(encoded[:-4])

    def test_checksum16_known_properties(self):
        assert checksum16(b"") == 0xFFFF
        assert checksum16(b"\x00\x00") == 0xFFFF
        assert 0 <= checksum16(b"hello world") <= 0xFFFF

    def test_clone_is_independent(self):
        tpp = make_tpp(_push_program(2), num_hops=2)
        clone = tpp.clone()
        clone.push(99)
        clone.advance_hop()
        assert tpp.stack_pointer == 0
        assert tpp.hop_number == 0
        assert clone.pushed_words() == [99]
