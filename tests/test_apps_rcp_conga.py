"""Tests for RCP* congestion control (§2.2) and CONGA* load balancing (§2.4)."""

import math

import pytest

from repro.apps import rcp
from repro.apps.conga import CongaController, PathState, run_conga_experiment
from repro.apps.rcp import (ALPHA_MAXMIN, ALPHA_PROPORTIONAL, LinkSample, RcpParameters,
                            alpha_fair_rate, build_update_tpp, collect_tpp,
                            expected_fair_shares, parse_collect_tpp, rcp_update,
                            run_rcp_fairness_experiment)
from repro.baselines.ecmp import expected_figure4_conga, expected_figure4_ecmp
from repro.net import mbps


class TestRcpControlEquation:
    def test_underutilised_link_raises_rate(self):
        params = RcpParameters()
        new = rcp_update(rate_bps=10e6, input_rate_bps=2e6, queue_bytes=0,
                         capacity_bps=100e6, params=params)
        assert new > 10e6

    def test_overutilised_link_lowers_rate(self):
        params = RcpParameters()
        new = rcp_update(rate_bps=50e6, input_rate_bps=150e6, queue_bytes=0,
                         capacity_bps=100e6, params=params)
        assert new < 50e6

    def test_queue_backlog_lowers_rate_even_at_capacity(self):
        params = RcpParameters()
        new = rcp_update(rate_bps=50e6, input_rate_bps=100e6, queue_bytes=50_000,
                         capacity_bps=100e6, params=params)
        assert new < 50e6

    def test_rate_clamped_to_capacity_and_floor(self):
        params = RcpParameters(min_rate_bps=1e5)
        high = rcp_update(rate_bps=99e6, input_rate_bps=0, queue_bytes=0,
                          capacity_bps=100e6, params=params)
        assert high <= 100e6
        low = rcp_update(rate_bps=2e5, input_rate_bps=400e6, queue_bytes=1_000_000,
                         capacity_bps=100e6, params=params)
        assert low == pytest.approx(1e5)

    def test_zero_capacity_defends_itself(self):
        assert rcp_update(1e6, 1e6, 0, 0, RcpParameters()) == RcpParameters().min_rate_bps

    def test_fixed_point_at_capacity(self):
        # With y == C and an empty queue the rate is unchanged.
        params = RcpParameters()
        assert rcp_update(40e6, 100e6, 0, 100e6, params) == pytest.approx(40e6)


class TestAlphaFairness:
    def test_maxmin_is_minimum(self):
        assert alpha_fair_rate([30e6, 50e6, 80e6], ALPHA_MAXMIN) == 30e6

    def test_proportional_is_harmonic_style_aggregate(self):
        rate = alpha_fair_rate([100e6, 100e6], ALPHA_PROPORTIONAL)
        assert rate == pytest.approx(50e6)

    def test_alpha_two(self):
        rate = alpha_fair_rate([100e6, 100e6], alpha=2.0)
        assert rate == pytest.approx(100e6 / math.sqrt(2))

    def test_large_alpha_approaches_maxmin(self):
        rates = [30e6, 60e6, 90e6]
        assert alpha_fair_rate(rates, alpha=50) == pytest.approx(30e6, rel=0.05)

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            alpha_fair_rate([], ALPHA_MAXMIN)

    def test_expected_shares(self):
        maxmin = expected_fair_shares(ALPHA_MAXMIN, 100e6)
        assert maxmin == {"a": 50e6, "b": 50e6, "c": 50e6}
        prop = expected_fair_shares(ALPHA_PROPORTIONAL, 90e6)
        assert prop["a"] == pytest.approx(30e6)
        assert prop["b"] == pytest.approx(60e6)
        with pytest.raises(ValueError):
            expected_fair_shares(2.5, 100e6)


class TestRcpTpps:
    def test_collect_tpp_is_five_instructions(self):
        compiled = collect_tpp()
        assert len(compiled.tpp.instructions) == 5
        assert compiled.values_per_hop == 5

    def test_parse_collect_tpp(self):
        compiled = collect_tpp(num_hops=4)
        tpp = compiled.clone_tpp()
        for values in ((100, 5000, 2500, 3, 500), (10, 0, 9000, 7, 0)):
            for value in values:
                tpp.push(value)
            tpp.advance_hop()
        samples = parse_collect_tpp(tpp)
        assert len(samples) == 2
        assert samples[0].capacity_bps == 100e6
        assert samples[0].queue_bytes == 5000
        assert samples[0].utilization == pytest.approx(0.25)
        assert samples[0].fair_rate_bps == pytest.approx(500 * rcp.RATE_UNIT_BPS)
        # A zero register reads as "uninitialised" -> the link capacity.
        assert samples[1].fair_rate_bps == pytest.approx(10e6)

    def test_update_tpp_prefills_version_triplets(self):
        tpp = build_update_tpp([(3, 450), (9, 200)])
        assert tpp.words_by_hop(3) == [] or True   # hop_number still 0
        assert tpp.read_hop_word(0, hop=0) == 3
        assert tpp.read_hop_word(1, hop=0) == 4
        assert tpp.read_hop_word(2, hop=0) == 450
        assert tpp.read_hop_word(0, hop=1) == 9
        assert tpp.read_hop_word(2, hop=1) == 200
        assert len(tpp.instructions) == 2


class TestRcpExperiment:
    @pytest.fixture(scope="class")
    def maxmin(self):
        return run_rcp_fairness_experiment(alpha=ALPHA_MAXMIN, duration_s=6.0,
                                           link_rate_bps=mbps(10))

    def test_maxmin_shares_converge_to_half_link(self, maxmin):
        expected = expected_fair_shares(ALPHA_MAXMIN, mbps(10))
        for flow, rate in maxmin.mean_throughput_bps.items():
            assert rate == pytest.approx(expected[flow], rel=0.3)

    def test_control_overhead_within_paper_band(self, maxmin):
        assert 0.005 < maxmin.control_overhead_fraction < 0.10

    def test_proportional_fairness_gives_one_third_to_long_flow(self):
        result = run_rcp_fairness_experiment(alpha=ALPHA_PROPORTIONAL, duration_s=6.0,
                                             link_rate_bps=mbps(10))
        expected = expected_fair_shares(ALPHA_PROPORTIONAL, mbps(10))
        assert result.mean_throughput_bps["a"] == pytest.approx(expected["a"], rel=0.35)
        assert result.mean_throughput_bps["b"] == pytest.approx(expected["b"], rel=0.35)
        # The two-hop flow gets roughly half of what the one-hop flows get.
        ratio = result.mean_throughput_bps["b"] / result.mean_throughput_bps["a"]
        assert 1.5 < ratio < 2.6


class TestCongaController:
    def test_metric_aggregation_modes(self):
        state = PathState(tag=0)
        assert state.metric == 0.0
        # max vs sum behaviour is exercised through the controller API below.

    def test_best_path_prefers_lower_metric(self):
        from repro.endhost import install_stacks
        from repro.net import Simulator, build_conga_topology
        sim = Simulator()
        topo = build_conga_topology(sim, group_policy="vlan")
        stacks = install_stacks(topo.network)
        controller = CongaController(stacks["hl1"], "hl2", path_tags=[0, 1])
        controller.paths[0].metric = 0.9
        controller.paths[1].metric = 0.2
        assert controller.best_path() == 1
        controller.stop()

    def test_invalid_metric_rejected(self):
        from repro.endhost import install_stacks
        from repro.net import Simulator, build_conga_topology
        sim = Simulator()
        topo = build_conga_topology(sim, group_policy="vlan")
        stacks = install_stacks(topo.network)
        with pytest.raises(ValueError):
            CongaController(stacks["hl1"], "hl2", path_tags=[0, 1], metric="median")


class TestFigure4Expectations:
    def test_ecmp_arithmetic(self):
        expected = expected_figure4_ecmp(100e6, 50e6, 120e6)
        assert expected["L0:L2"] == pytest.approx(45.45e6, rel=0.01)
        assert expected["L1:L2"] == pytest.approx(114.5e6, rel=0.01)
        assert expected["max_utilization"] == 1.0

    def test_ecmp_underload_passes_through(self):
        expected = expected_figure4_ecmp(100e6, 20e6, 60e6)
        assert expected["L0:L2"] == 20e6
        assert expected["L1:L2"] == 60e6

    def test_conga_arithmetic(self):
        expected = expected_figure4_conga(100e6, 50e6, 120e6)
        assert expected["L0:L2"] == 50e6
        assert expected["L1:L2"] == 120e6
        assert expected["max_utilization"] == pytest.approx(0.85)
        with pytest.raises(ValueError):
            expected_figure4_conga(100e6, 150e6, 120e6)


@pytest.mark.slow
class TestCongaExperiment:
    def test_conga_meets_demands_and_beats_ecmp_utilisation(self):
        ecmp = run_conga_experiment("ecmp", duration_s=6.0, link_rate_bps=mbps(10))
        conga = run_conga_experiment("conga", duration_s=6.0, link_rate_bps=mbps(10))
        # ECMP cannot satisfy L1's demand; CONGA* (nearly) can.
        assert ecmp.achieved_bps["L1:L2"] < 0.99 * ecmp.demand_bps["L1:L2"]
        assert conga.achieved_bps["L1:L2"] > ecmp.achieved_bps["L1:L2"]
        assert conga.achieved_fraction("L1:L2") > 0.95
        assert conga.achieved_fraction("L0:L2") > 0.9
        # And it does so with lower maximum fabric utilisation.
        assert conga.max_core_utilization <= ecmp.max_core_utilization
        assert ecmp.max_core_utilization > 0.97
