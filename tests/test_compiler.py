"""Tests for the TPP compiler (mnemonic resolution, stack expansion, templates)."""

import pytest

from repro.core import addressing
from repro.core.compiler import collector_tpp, compile_tpp, expand_stack_program
from repro.core.exceptions import AssemblyError, CapacityError
from repro.core.isa import Instruction, Opcode
from repro.core.packet_format import AddressingMode


class TestCompile:
    def test_stack_program_defaults_to_stack_mode(self):
        compiled = compile_tpp("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]")
        assert compiled.tpp.mode is AddressingMode.STACK
        assert compiled.values_per_hop == 2

    def test_hop_program_defaults_to_hop_mode(self):
        compiled = compile_tpp(
            "CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]\n"
            "STORE [Link:AppSpecific_1], [Packet:Hop[2]]")
        assert compiled.tpp.mode is AddressingMode.HOP
        assert compiled.values_per_hop == 3

    def test_memory_sized_for_requested_hops(self):
        compiled = compile_tpp("PUSH [Switch:SwitchID]", num_hops=7)
        assert len(compiled.tpp.memory) == 7 * compiled.tpp.word_bytes

    def test_app_id_stamped(self):
        assert compile_tpp("PUSH [Switch:SwitchID]", app_id=9).tpp.app_id == 9

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            compile_tpp("# nothing here")

    def test_too_many_instructions_rejected(self):
        source = "\n".join("PUSH [Switch:SwitchID]" for _ in range(6))
        with pytest.raises(CapacityError):
            compile_tpp(source)

    def test_initial_values(self):
        compiled = compile_tpp("STORE [Link:AppSpecific_0], [Packet:Hop[0]]",
                               num_hops=2, initial_values=[42, 43])
        assert compiled.tpp.all_words()[:2] == [42, 43]

    def test_clone_tpp_returns_fresh_copy(self):
        compiled = compile_tpp("PUSH [Switch:SwitchID]")
        first, second = compiled.clone_tpp(), compiled.clone_tpp()
        first.push(5)
        assert second.stack_pointer == 0


class TestStackExpansion:
    def test_pushes_become_loads_with_sequential_offsets(self):
        program = [Instruction(Opcode.PUSH, 0x0000),
                   Instruction(Opcode.PUSH, 0x0001),
                   Instruction(Opcode.PUSH, 0x0002)]
        expanded, per_hop = expand_stack_program(program)
        assert [i.opcode for i in expanded] == [Opcode.LOAD] * 3
        assert [i.packet_offset for i in expanded] == [0, 1, 2]
        assert per_hop == 3

    def test_pop_becomes_store(self):
        expanded, _ = expand_stack_program([Instruction(Opcode.POP, 0x1010)])
        assert expanded[0].opcode is Opcode.STORE

    def test_paper_section_3_5_example(self):
        # PUSH/PUSH/PUSH/POP from §3.5 becomes LOAD/LOAD/LOAD/STORE.
        source = """
        PUSH [PacketMetadata:OutputPort]
        PUSH [PacketMetadata:InputPort]
        PUSH [Stage$1:Reg1]
        POP [Stage$3:Reg3]
        """
        compiled = compile_tpp(source, expand_stack=True)
        opcodes = [i.opcode for i in compiled.tpp.instructions]
        assert opcodes == [Opcode.LOAD, Opcode.LOAD, Opcode.LOAD, Opcode.STORE]
        assert compiled.tpp.mode is AddressingMode.HOP

    def test_expansion_preserves_addresses(self):
        source = "PUSH [Switch:SwitchID]\nPUSH [Link:TX-Bytes]"
        compiled = compile_tpp(source, expand_stack=True)
        assert compiled.tpp.instructions[0].address == addressing.resolve("[Switch:SwitchID]")
        assert compiled.tpp.instructions[1].address == addressing.resolve("[Link:TX-Bytes]")


class TestCollectorTemplate:
    def test_collector_tpp_builds_push_program(self):
        compiled = collector_tpp(["Switch:SwitchID", "[Link:TX-Utilization]"])
        assert len(compiled.tpp.instructions) == 2
        assert all(i.opcode is Opcode.PUSH for i in compiled.tpp.instructions)
        assert compiled.values_per_hop == 2
