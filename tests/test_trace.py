"""Differential tests for the compiled TCPU trace engine (repro.core.trace).

The compiled trace must be *instruction-for-instruction* identical to the
interpreter — same statuses, same packet memory, same switch-memory writes,
same counters — on every program, eligible or not.  This file holds:

* a property-style sweep running randomized valid programs through the
  interpreter, the plan-cached interpreter, and the compiled trace
  (``REPRO_HYPOTHESIS_PROFILE=quick`` shrinks the sweep for CI's docs job);
* resolver equivalence checks against a real switch's ``SwitchMemory``;
* regression tests for the cache-keying contract: a mutated (non-template)
  program, changed word size / addressing mode / hop size, or a flipped
  write-enable knob can never hit a stale plan or trace;
* plumbing tests for the ``compile_traces`` toggle through ``TPPSwitch``,
  ``DataplaneShim`` eligibility accounting, and ``Scenario``.
"""

import os
import random

from hypothesis import given, settings, strategies as st

from repro.core import addressing
from repro.core.compiler import compile_tpp
from repro.core.isa import Instruction, Opcode
from repro.core.packet_format import AddressingMode, make_tpp
from repro.core.static_analysis import trace_ineligibility
from repro.core.tcpu import InstructionStatus, PacketContext, TCPU
from repro.core.trace import compile_trace, trace_eligible
from repro.endhost.filters import PacketFilter
from repro.net.link import gbps
from repro.session import Scenario

settings.register_profile("quick", max_examples=15)
settings.register_profile("default", max_examples=80)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


class DictMemory:
    """MemoryInterface backed by a dict, with optional read-only addresses."""

    def __init__(self, values=None, read_only=()):
        self.values = dict(values or {})
        self.read_only = set(read_only)

    def read(self, address, context):
        return self.values.get(address)

    def write(self, address, value, context):
        if address in self.read_only or address not in self.values:
            return False
        self.values[address] = value
        return True


#: Address pool: some populated, one read-only, one absent.
ADDRESSES = [0x0000, 0x0001, 0x1010, 0x1011, 0xBEEF]
PRESENT = {0x0000: 7, 0x0001: 0x1234, 0x1010: 0, 0x1011: 0xFFFF}
READ_ONLY = {0x0001}

addresses = st.sampled_from(ADDRESSES)
trace_opcodes = st.sampled_from([Opcode.NOP, Opcode.PUSH, Opcode.POP,
                                 Opcode.LOAD, Opcode.STORE])
all_opcodes = st.sampled_from(list(Opcode))


def programs(opcodes):
    return st.lists(
        st.builds(Instruction, opcode=opcodes, address=addresses,
                  packet_offset=st.integers(min_value=0, max_value=4)),
        min_size=1, max_size=5)


def run_all_engines(program, *, word_bytes, mode, num_hops, hop_number,
                    stack_pointer, fill, write_enabled=True):
    """Run one program through interpreter / plan cache / compiled trace.

    Returns the three (result, tpp, memory) triples; inputs are cloned so
    each engine sees identical state.
    """
    values_per_hop = 3                      # room for offsets 0..2, plus slack
    template = make_tpp(program, num_hops=num_hops, mode=mode,
                        word_bytes=word_bytes, values_per_hop=values_per_hop)
    rng = random.Random(fill)
    template.memory[:] = bytes(rng.randrange(256) for _ in range(len(template.memory)))
    template.hop_number = hop_number
    template.stack_pointer = stack_pointer

    outcomes = []
    for engine in ("execute", "plan", "trace"):
        tpp = template.clone()
        memory = DictMemory(PRESENT, READ_ONLY)
        context = PacketContext(input_port=1, output_port=2, packet_length=700,
                                arrival_time=1.5)
        tcpu = TCPU(write_enabled=write_enabled,
                    compile_traces=(engine == "trace"))
        if engine == "execute":
            result = tcpu.execute(tpp, memory, context)
        else:
            result = tcpu.execute_program(tpp, memory, context)
        outcomes.append((result, tpp, memory, tcpu))
    return outcomes


def assert_engines_agree(outcomes):
    reference = outcomes[0]
    for other in outcomes[1:]:
        ref_result, ref_tpp, ref_memory, ref_tcpu = reference
        result, tpp, memory, tcpu = other
        assert result.statuses == ref_result.statuses
        assert result.halted == ref_result.halted
        assert result.switch_reads == ref_result.switch_reads
        assert result.switch_writes == ref_result.switch_writes
        assert result.wrote_switch_memory == ref_result.wrote_switch_memory
        assert tpp.memory == ref_tpp.memory
        assert tpp.stack_pointer == ref_tpp.stack_pointer
        assert tpp.hop_number == ref_tpp.hop_number
        assert memory.values == ref_memory.values
        assert tcpu.tpps_executed == ref_tcpu.tpps_executed
        assert tcpu.instructions_executed == ref_tcpu.instructions_executed


class TestDifferentialSweep:
    """Random valid programs: the three engines must be indistinguishable."""

    @given(programs(trace_opcodes),
           st.sampled_from([2, 4]),
           st.sampled_from([AddressingMode.STACK, AddressingMode.HOP]),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=8),
           st.integers(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=2**16))
    def test_trace_eligible_programs(self, program, word_bytes, mode, num_hops,
                                     hop_number, stack_pointer, fill):
        assert_engines_agree(run_all_engines(
            program, word_bytes=word_bytes, mode=mode, num_hops=num_hops,
            hop_number=hop_number, stack_pointer=stack_pointer, fill=fill))

    @given(programs(all_opcodes),
           st.sampled_from([2, 4]),
           st.sampled_from([AddressingMode.STACK, AddressingMode.HOP]),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=8),
           st.integers(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=2**16),
           st.booleans())
    def test_any_program_any_knobs(self, program, word_bytes, mode, num_hops,
                                   hop_number, stack_pointer, fill, write_enabled):
        """Conditionals (interpreter fallback) and write-disable included."""
        assert_engines_agree(run_all_engines(
            program, word_bytes=word_bytes, mode=mode, num_hops=num_hops,
            hop_number=hop_number, stack_pointer=stack_pointer, fill=fill,
            write_enabled=write_enabled))


class TestResolverEquivalence:
    """SwitchMemory.read_resolver must agree with SwitchMemory.read."""

    def _switch(self):
        from repro.net.sim import Simulator
        from repro.switches.switch import TPPSwitch
        sim = Simulator()
        switch = TPPSwitch(sim, "s1", switch_id=42)
        for _ in range(3):
            switch.add_port()
        switch.install_route("h1", output_port=1)
        return switch

    def test_every_known_statistic_matches(self, subtests=None):
        switch = self._switch()
        contexts = [
            PacketContext(),
            PacketContext(input_port=1, output_port=2, output_queue=0,
                          matched_entry_id=3, matched_stage=1, hop_number=2,
                          path_id=9, packet_length=1500, arrival_time=2.5),
            PacketContext(output_port=77),           # out-of-range port
            PacketContext(output_queue=1),           # nonexistent queue id
        ]
        names = []
        for region, fields in (("Switch", addressing.SWITCH_FIELDS),
                               ("PacketMetadata", addressing.PACKET_METADATA_FIELDS),
                               ("Queue", addressing.QUEUE_FIELDS),
                               ("Link", addressing.LINK_FIELDS)):
            names.extend(f"[{region}:{field}]" for field in fields)
        names.extend(["[Stage$0:LookupPackets]", "[Stage$0:Reg0]",
                      "[Link$1:TX-Bytes]", "[Queue$1$0:QueueOccupancy]"])
        checked = 0
        for name in names:
            address = addressing.resolve(name)
            resolver = switch.memory.read_resolver(address)
            for context in contexts:
                assert resolver(context) == switch.memory.read(address, context), \
                    f"resolver diverged for {name} with {context}"
                checked += 1
        assert checked > 100

    def test_invalid_address_resolves_to_none(self):
        switch = self._switch()
        for address in (0xFFFF, 0xFDFF):
            resolver = switch.memory.read_resolver(address)
            assert resolver(PacketContext()) is None
            assert switch.memory.read(address, PacketContext()) is None


class TestEligibility:
    def test_conditionals_are_ineligible(self):
        for opcode in (Opcode.CSTORE, Opcode.CEXEC):
            program = [Instruction(opcode, 0x0000, packet_offset=0)]
            assert not trace_eligible(program)
            assert "conditional" in trace_ineligibility(program)

    def test_hazardous_packet_layout_is_ineligible(self):
        program = [Instruction(Opcode.LOAD, 0x0000, packet_offset=0),
                   Instruction(Opcode.LOAD, 0x0001, packet_offset=0)]
        assert not trace_eligible(program)
        assert "hazard" in trace_ineligibility(program)

    def test_straight_line_program_is_eligible(self):
        program = [Instruction(Opcode.PUSH, 0x0000),
                   Instruction(Opcode.LOAD, 0x0001, packet_offset=1)]
        assert trace_eligible(program)
        compiled = compile_trace(program, word_bytes=2,
                                 mode=AddressingMode.STACK, hop_size=0)
        assert compiled is not None
        assert "__tpp_trace" in compiled.source

    def test_ineligible_program_falls_back_and_counts(self):
        program = [Instruction(Opcode.CEXEC, 0x0000, packet_offset=0)]
        tpp = make_tpp(program, num_hops=1, mode=AddressingMode.HOP,
                       values_per_hop=3, initial_values=[0xFFFF, 7, 0])
        tcpu = TCPU(compile_traces=True)
        result = tcpu.execute_program(tpp, DictMemory({0x0000: 7}), PacketContext())
        assert result.statuses == [InstructionStatus.EXECUTED]
        assert tcpu.trace_fallbacks == 1
        assert tcpu.trace_executions == 0


class TestCacheKeying:
    """A mutated (non-template) program must never hit a stale plan/trace."""

    def _memory(self):
        return DictMemory(PRESENT, READ_ONLY)

    def test_instruction_replacement_misses_plan_cache(self):
        a = addressing.resolve("[Switch:SwitchID]")
        tcpu = TCPU()
        tpp = compile_tpp("PUSH [Switch:SwitchID]\nPUSH [Switch:VersionNumber]").tpp
        memory = DictMemory({a: 5})
        tcpu.execute_program(tpp, memory, PacketContext())
        assert tpp.pushed_words() == [5]
        # In-place mutation: same list object, new instruction object.
        tpp.instructions[1] = Instruction(Opcode.PUSH, a)
        mutated = tpp.clone()
        mutated.stack_pointer = 0
        tcpu.execute_program(mutated, DictMemory({a: 9}), PacketContext())
        assert mutated.pushed_words() == [9, 9]     # stale plan would push once

    def test_instruction_append_misses_plan_cache(self):
        a = addressing.resolve("[Switch:SwitchID]")
        tcpu = TCPU(compile_traces=True)
        tpp = compile_tpp("PUSH [Switch:SwitchID]").tpp
        tcpu.execute_program(tpp, DictMemory({a: 1}), PacketContext())
        tpp.instructions.append(Instruction(Opcode.PUSH, a))
        grown = tpp.clone()
        grown.stack_pointer = 0
        result = tcpu.execute_program(grown, DictMemory({a: 2}), PacketContext())
        assert len(result.statuses) == 2
        assert grown.pushed_words() == [2, 2]

    def test_word_bytes_change_recompiles(self):
        address = addressing.resolve("[PacketMetadata:ArrivalTimestamp]")
        program = [Instruction(Opcode.PUSH, address)]

        class MetadataMemory:
            def read(self, addr, context):
                decoded = addressing.decode(addr)
                return context.metadata_word(decoded.field_offset)

            def write(self, addr, value, context):
                return False

        context = PacketContext(arrival_time=1.0)       # 1e6 us = 0xF4240
        tcpu = TCPU(compile_traces=True)
        for word_bytes, expected in ((2, 0xF4240 & 0xFFFF), (4, 0xF4240)):
            tpp = make_tpp(program, num_hops=1, word_bytes=word_bytes)
            tcpu.execute_program(tpp, MetadataMemory(), context)
            assert tpp.pushed_words() == [expected]

    def test_mode_and_hop_size_are_part_of_the_trace_key(self):
        memory_values = {0x0000: 0xAA, 0x0001: 0xBB}
        program = [Instruction(Opcode.LOAD, 0x0000, packet_offset=0),
                   Instruction(Opcode.LOAD, 0x0001, packet_offset=1)]
        tcpu = TCPU(compile_traces=True)

        hop = make_tpp(program, num_hops=3, mode=AddressingMode.HOP,
                       values_per_hop=2)
        hop.hop_number = 2
        tcpu.execute_program(hop, DictMemory(memory_values), PacketContext())
        assert hop.read_hop_word(0, hop=2) == 0xAA      # wrote hop 2's slice
        assert hop.read_hop_word(0, hop=0) == 0

        # Same instruction objects, stack mode: absolute offsets 0 and 1.
        stack = make_tpp(program, num_hops=3, mode=AddressingMode.STACK,
                         values_per_hop=2)
        stack.hop_number = 2
        tcpu.execute_program(stack, DictMemory(memory_values), PacketContext())
        assert stack.read_word_bytes(0) == 0xAA         # absolute word 0
        assert stack.read_word_bytes(2) == 0xBB

    def test_write_enabled_flip_recompiles_traces(self):
        store = [Instruction(Opcode.STORE, 0x1010, packet_offset=0)]
        tcpu = TCPU(compile_traces=True)

        def run():
            tpp = make_tpp(store, num_hops=1, mode=AddressingMode.HOP,
                           initial_values=[55])
            memory = self._memory()
            return tcpu.execute_program(tpp, memory, PacketContext()), memory

        result, memory = run()
        assert result.statuses == [InstructionStatus.EXECUTED]
        assert memory.values[0x1010] == 55

        tcpu.write_enabled = False
        result, memory = run()
        assert result.statuses == [InstructionStatus.SKIPPED_WRITE_DISABLED]
        assert memory.values[0x1010] == 0

        tcpu.write_enabled = True
        result, memory = run()
        assert result.statuses == [InstructionStatus.EXECUTED]
        assert memory.values[0x1010] == 55

    def test_equal_content_different_objects_share_one_compiled_program(self):
        a = addressing.resolve("[Switch:SwitchID]")
        tcpu = TCPU(compile_traces=True)
        memory = DictMemory({a: 1})
        template = compile_tpp("PUSH [Switch:SwitchID]").tpp
        for _ in range(5):
            tcpu.execute_program(template.clone(), memory, PacketContext())
        assert tcpu.traces_compiled == 1
        assert tcpu.trace_executions == 5

    def test_trace_cache_is_bounded(self):
        from repro.core.tcpu import _PLAN_CACHE_LIMIT
        tcpu = TCPU(compile_traces=True)
        memory = DictMemory(PRESENT)
        for address in range(_PLAN_CACHE_LIMIT + 10):
            tpp = make_tpp([Instruction(Opcode.PUSH, address)], num_hops=1)
            tcpu.execute_program(tpp, memory, PacketContext())
        assert len(tcpu._trace_cache) <= _PLAN_CACHE_LIMIT
        assert len(tcpu._trace_programs) <= _PLAN_CACHE_LIMIT
        assert len(tcpu._plan_cache) <= _PLAN_CACHE_LIMIT


class TestPlumbing:
    def _scenario(self, compile_traces):
        return (Scenario("dumbbell", seed=3, hosts_per_side=2,
                         link_rate_bps=gbps(1), compile_traces=compile_traces)
                .tpp("monitor",
                     "PUSH [PacketMetadata:OutputPort]\n"
                     "PUSH [Switch:Clock]\n"
                     "PUSH [Queue:QueueOccupancyBytes]\n"
                     "PUSH [Link:TX-Bytes]\n"
                     "PUSH [Switch:SwitchID]",
                     filter=PacketFilter(protocol="udp"), num_hops=6)
                .workload("messages", offered_load=0.2, message_bytes=4_000))

    def test_scenario_runs_are_byte_identical_across_engines(self):
        """End-to-end differential on a real network, exercising the
        specialized SwitchMemory resolvers (metadata, clock, queue, link)."""
        payloads = {}

        def run(compile_traces):
            collected = []
            result = (self._scenario(compile_traces)
                      .collect(lambda tpp, packet:
                               collected.append((packet.src, packet.dst,
                                                 tpp.hop_number,
                                                 bytes(tpp.memory))))
                      .run(duration_s=0.05))
            payloads[compile_traces] = collected
            return result

        interp, traced = run(False), run(True)
        assert interp.events_executed == traced.events_executed
        assert interp.tpps_attached == traced.tpps_attached
        assert interp.tpps_completed == traced.tpps_completed
        assert payloads[False] == payloads[True]
        assert payloads[True], "the sweep must actually collect TPPs"
        assert traced.trace_executions > 0
        assert traced.trace_fallbacks == 0
        assert interp.trace_executions == 0

    def test_switch_constructor_and_property_toggle(self):
        from repro.net.sim import Simulator
        from repro.switches.switch import TPPSwitch
        sim = Simulator()
        switch = TPPSwitch(sim, "s1", switch_id=1, compile_traces=True)
        assert switch.compile_traces and switch.tcpu.compile_traces
        switch.compile_traces = False
        assert not switch.tcpu.compile_traces

    def test_shim_reports_trace_eligibility(self):
        experiment = (self._scenario(True)
                      .tpp("verify",
                           "CEXEC [Switch:SwitchID], [Packet:Hop[0]]\n"
                           "LOAD [Link:TX-Bytes], [Packet:Hop[2]]",
                           filter=PacketFilter(protocol="tcp"), num_hops=4)
                      .build())
        shim = next(iter(experiment.stacks.values())).shim
        assert shim.traceable_filters == 1
        assert shim.untraceable_filters == 1
        ineligible = shim.trace_ineligible_programs()
        assert len(ineligible) == 1
        assert "conditional" in ineligible[0][1]
        experiment.finish()
