"""Tests for static analysis and access control of TPPs."""

import pytest

from repro.core import addressing
from repro.core.assembler import parse_program
from repro.core.exceptions import AccessControlError
from repro.core.static_analysis import (MemoryGrant, analyze, check_access,
                                        uses_write_instructions)


def program(source):
    return parse_program(source)


class TestAnalyze:
    def test_read_only_program(self):
        report = analyze(program("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]"))
        assert not report.has_switch_write
        assert len(report.read_addresses) == 2
        assert report.write_addresses == set()

    def test_write_detection(self):
        report = analyze(program("STORE [Link:AppSpecific_1], [Packet:Hop[0]]"))
        assert report.has_switch_write
        assert uses_write_instructions(program("POP [Link:AppSpecific_0]"))
        assert not uses_write_instructions(program("PUSH [Link:AppSpecific_0]"))

    def test_cstore_counts_as_read_and_write(self):
        report = analyze(program(
            "CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]"))
        address = addressing.resolve("[Link:AppSpecific_0]")
        assert address in report.read_addresses
        assert address in report.write_addresses
        assert report.has_conditional

    def test_no_hazards_in_paper_programs(self):
        collect = """
        PUSH [Switch:SwitchID]
        PUSH [Link:QueueSize]
        PUSH [Link:RX-Utilization]
        PUSH [Link:AppSpecific_0]
        PUSH [Link:AppSpecific_1]
        """
        update = """
        CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
        STORE [Link:AppSpecific_1], [Packet:Hop[2]]
        """
        assert analyze(program(collect)).hazards == []
        assert analyze(program(update)).hazards == []

    def test_write_after_write_hazard_detected(self):
        source = """
        LOAD [Switch:SwitchID], [Packet:Hop[0]]
        LOAD [Switch:VersionNumber], [Packet:Hop[0]]
        """
        hazards = analyze(program(source)).hazards
        assert any("write-after-write" in hazard for hazard in hazards)

    def test_read_after_write_hazard_detected(self):
        source = """
        LOAD [Switch:SwitchID], [Packet:Hop[0]]
        STORE [Link:AppSpecific_0], [Packet:Hop[0]]
        """
        hazards = analyze(program(source)).hazards
        assert any("read-after-write" in hazard for hazard in hazards)


class TestCheckAccess:
    def _grants_for(self, mnemonic, operation="write"):
        address = addressing.resolve(mnemonic)
        return [MemoryGrant(operation, address, address)]

    def test_reads_of_standard_statistics_allowed_without_grants(self):
        check_access(program("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]"), [])

    def test_write_without_grant_rejected(self):
        with pytest.raises(AccessControlError):
            check_access(program("STORE [Link:AppSpecific_1], [Packet:Hop[0]]"), [])

    def test_write_with_grant_allowed(self):
        check_access(program("STORE [Link:AppSpecific_1], [Packet:Hop[0]]"),
                     self._grants_for("[Link:AppSpecific_1]"))

    def test_write_to_other_register_rejected(self):
        with pytest.raises(AccessControlError):
            check_access(program("STORE [Link:AppSpecific_2], [Packet:Hop[0]]"),
                         self._grants_for("[Link:AppSpecific_1]"))

    def test_app_specific_read_requires_grant(self):
        with pytest.raises(AccessControlError):
            check_access(program("PUSH [Link:AppSpecific_3]"), [])
        check_access(program("PUSH [Link:AppSpecific_3]"),
                     self._grants_for("[Link:AppSpecific_3]", operation="read"))

    def test_grant_range_covers_interval(self):
        start = addressing.resolve("[Link:AppSpecific_0]")
        end = addressing.resolve("[Link:AppSpecific_7]")
        grants = [MemoryGrant("write", start, end), MemoryGrant("read", start, end)]
        check_access(program("CSTORE [Link:AppSpecific_5], [Packet:Hop[0]], [Packet:Hop[1]]"),
                     grants)

    def test_violation_message_names_the_address(self):
        try:
            check_access(program("STORE [Link:AppSpecific_1], [Packet:Hop[0]]"), [], app_id=7)
        except AccessControlError as error:
            assert "AppSpecific_1" in str(error)
            assert "app 7" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected AccessControlError")
