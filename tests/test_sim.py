"""Tests for the discrete-event simulation engine."""

import pytest

from repro.net.sim import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for name in "abcde":
            sim.schedule(1.0, order.append, name)
        sim.run_until_idle()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.25, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [pytest.approx(0.25)]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [pytest.approx(1.5)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_nan_delay_rejected_with_accurate_message(self):
        with pytest.raises(SimulationError, match="NaN delay"):
            Simulator().schedule(float("nan"), lambda: None)

    def test_infinite_delay_rejected(self):
        with pytest.raises(SimulationError, match="infinite"):
            Simulator().schedule(float("inf"), lambda: None)

    def test_nan_and_inf_absolute_times_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="NaN"):
            sim.schedule_at(float("nan"), lambda: None)
        with pytest.raises(SimulationError, match="infinite"):
            sim.schedule_at(float("inf"), lambda: None)

    def test_schedule_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(0.5, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run_until_idle()
        assert times == [pytest.approx(1.0), pytest.approx(1.5)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.1, fired.append, 1)
        event.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "keep1")
        doomed = sim.schedule(0.2, fired.append, "drop")
        sim.schedule(0.3, fired.append, "keep2")
        doomed.cancel()
        sim.run_until_idle()
        assert fired == ["keep1", "keep2"]


class TestScheduleMany:
    def test_burst_runs_in_time_then_fifo_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.15, order.append, "solo")
        events = sim.schedule_many([
            (0.2, order.append, ("b1",)),
            (0.1, order.append, ("a",)),
            (0.2, order.append, ("b2",)),
        ])
        assert len(events) == 3
        sim.run_until_idle()
        assert order == ["a", "solo", "b1", "b2"]

    def test_burst_matches_sequential_schedules(self):
        loop_order, batch_order = [], []
        specs = [(0.01 * (i % 5), i) for i in range(50)]
        sim = Simulator()
        for delay, tag in specs:
            sim.schedule(delay, loop_order.append, tag)
        sim.run_until_idle()
        sim2 = Simulator()
        sim2.schedule_many([(delay, batch_order.append, (tag,))
                            for delay, tag in specs])
        sim2.run_until_idle()
        assert batch_order == loop_order

    def test_burst_events_are_cancellable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_many([(0.1, fired.append, (i,)) for i in range(4)])
        events[1].cancel()
        events[2].cancel()
        sim.run_until_idle()
        assert fired == [0, 3]

    def test_burst_validates_delays(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_many([(0.1, lambda: None), (-1.0, lambda: None)])


class TestHeapHygiene:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        doomed = sim.schedule(2.0, lambda: None)
        doomed.cancel()
        assert sim.pending_events == 1

    def test_mass_periodic_stop_compacts_heap(self):
        sim = Simulator()
        processes = [sim.schedule_periodic(1.0, lambda: None) for _ in range(200)]
        assert sim.pending_events == 200
        for process in processes:
            process.stop()
        assert sim.pending_events == 0
        # Lazy deletion must not leave the heap dominated by dead entries.
        assert sim.heap_size <= 200 // 2
        assert sim.cancelled_events_pending == sim.heap_size

    def test_compaction_preserves_execution_order(self):
        sim = Simulator()
        order = []
        events = [sim.schedule(0.01 * (i + 1), order.append, i) for i in range(100)]
        for event in events[::2]:
            event.cancel()            # triggers compaction part-way through
        sim.run_until_idle()
        assert order == list(range(1, 100, 2))

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.cancelled_events_pending in (0, 1)   # compaction may have run
        assert sim.pending_events == 0

    def test_cancellation_inside_callback_keeps_later_events(self):
        # Regression: compaction rebinds must happen in place — events
        # scheduled after a mid-run compaction must still execute.
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(0.5, fired.append, f"dead{i}") for i in range(100)]

        def cancel_all_then_reschedule():
            for event in doomed:
                event.cancel()          # drives cancelled > half the heap
            sim.schedule(0.1, fired.append, "late")

        sim.schedule(0.1, cancel_all_then_reschedule)
        sim.run_until_idle()
        assert fired == ["late"]

    def test_cancel_of_executed_event_does_not_corrupt_accounting(self):
        # Regression: a periodic process stopping itself from its own
        # callback cancels the event that is currently executing (already
        # popped); the dead-entry counter must not move.
        sim = Simulator()
        fired = []
        holder = {}

        def tick():
            fired.append(sim.now)
            holder["process"].stop()             # cancels the in-flight event

        holder["process"] = sim.schedule_periodic(0.1, tick)
        sim.run_until_idle()
        assert len(fired) == 1
        assert sim.pending_events == 0
        assert sim.cancelled_events_pending == 0

    def test_cancel_after_reset_does_not_corrupt_accounting(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.reset()
        event.cancel()
        assert sim.pending_events == 0
        assert sim.cancelled_events_pending == 0

    def test_run_until_ignores_cancelled_head_beyond_limit(self):
        # Regression: a cancelled event ahead of the time limit must not let
        # a live event *past* the limit execute.
        sim = Simulator()
        fired = []
        doomed = sim.schedule(0.5, fired.append, "dead")
        sim.schedule(5.0, fired.append, "late")
        doomed.cancel()
        sim.run(until=1.0)
        assert fired == []
        assert sim.now == pytest.approx(1.0)
        assert sim.pending_events == 1


class TestRunLimits:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=1.0)
        assert fired == ["early"]
        assert sim.now == pytest.approx(1.0)
        assert sim.pending_events == 1

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=2.0)
        assert sim.now == pytest.approx(2.0)

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_executed == 3

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_reset_clears_everything(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_executed == 0


class TestPeriodicProcess:
    def test_fires_every_interval(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(0.5, lambda: times.append(sim.now))
        sim.run(until=2.2)
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        count = [0]
        process = sim.schedule_periodic(0.1, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(until=0.35)
        process.stop()
        sim.run(until=1.0)
        assert count[0] == 3

    def test_zero_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_jitter_function_applied(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now), jitter_fn=lambda: 0.25)
        sim.run(until=3.0)
        assert times == pytest.approx([1.25, 2.5])

    def test_callback_args_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule_periodic(0.5, seen.append, "tick")
        sim.run(until=1.1)
        assert seen == ["tick", "tick"]
