"""Tests for the discrete-event simulation engine."""

import pytest

from repro.net.sim import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for name in "abcde":
            sim.schedule(1.0, order.append, name)
        sim.run_until_idle()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.25, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [pytest.approx(0.25)]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [pytest.approx(1.5)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(0.5, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run_until_idle()
        assert times == [pytest.approx(1.0), pytest.approx(1.5)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.1, fired.append, 1)
        event.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "keep1")
        doomed = sim.schedule(0.2, fired.append, "drop")
        sim.schedule(0.3, fired.append, "keep2")
        doomed.cancel()
        sim.run_until_idle()
        assert fired == ["keep1", "keep2"]


class TestRunLimits:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=1.0)
        assert fired == ["early"]
        assert sim.now == pytest.approx(1.0)
        assert sim.pending_events == 1

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=2.0)
        assert sim.now == pytest.approx(2.0)

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_executed == 3

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_reset_clears_everything(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_executed == 0


class TestPeriodicProcess:
    def test_fires_every_interval(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(0.5, lambda: times.append(sim.now))
        sim.run(until=2.2)
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        count = [0]
        process = sim.schedule_periodic(0.1, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(until=0.35)
        process.stop()
        sim.run(until=1.0)
        assert count[0] == 3

    def test_zero_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_jitter_function_applied(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now), jitter_fn=lambda: 0.25)
        sim.run(until=3.0)
        assert times == pytest.approx([1.25, 2.5])

    def test_callback_args_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule_periodic(0.5, seen.append, "tick")
        sim.run(until=1.1)
        assert seen == ["tick", "tick"]
