"""Tests for the fault plane (repro.faults) and the loss-localization app.

Covers the plan model (validation, canonical ordering, deterministic
generation), the injector (eager link resolution, scheduled application,
per-link corruption streams), the remediation policy registry and
controller, the Scenario / spec / sweep integration, and the end-to-end
story: an empty plan changes nothing, a seeded corrupting link is named
by the TPP detector, and the disable-and-repair policy measurably cuts
the loss penalty versus doing nothing.
"""

import pickle

import pytest

from repro.apps.losslocal import (LossLocalizationResult, localize,
                                  losslocal_scenario, merged_deficits)
from repro.faults import (FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan,
                          FaultSpec, POLICIES, RemediationSpec, link_rng)
from repro.net import mbps
from repro.session import ResultSummary, Scenario, SpecError
from repro.session.registry import UnknownRegistration
from repro.sweep import SweepSpec

#: The link the end-to-end tests corrupt — an edge-to-aggregation link on
#: the k=4 fat tree, so all-hosts traffic crosses it from both sides.
LOSSY_LINK = "edge0_0<->agg0_0"


def one_link_plan(loss_rate: float = 0.10, seed: int = 7) -> FaultPlan:
    return FaultPlan(events=(FaultEvent(0.0, LOSSY_LINK, "loss", loss_rate),),
                     seed=seed)


def quick_losslocal(**kwargs) -> Scenario:
    kwargs.setdefault("k", 4)
    kwargs.setdefault("link_rate_bps", mbps(100))
    kwargs.setdefault("offered_load", 0.2)
    kwargs.setdefault("seed", 1)
    return losslocal_scenario(**kwargs)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0.0, "a<->b", "flap")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            FaultEvent(-0.1, "a<->b", "down")

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            FaultEvent(0.0, "a<->b", "loss", 0.0)
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            FaultEvent(0.0, "a<->b", "loss", 1.5)
        assert FaultEvent(0.0, "a<->b", "loss", 1.0).loss_rate == 1.0

    def test_non_loss_kinds_take_no_rate(self):
        with pytest.raises(ValueError, match="no loss_rate"):
            FaultEvent(0.0, "a<->b", "down", 0.5)


class TestFaultPlan:
    def test_events_sorted_canonically(self):
        late = FaultEvent(1.0, "a<->b", "down")
        early = FaultEvent(0.5, "c<->d", "loss", 0.1)
        plan = FaultPlan(events=(late, early))
        assert plan.events == (early, late)
        # Equal event multisets compare equal regardless of input order.
        assert plan == FaultPlan(events=(early, late))
        assert plan.links() == ["a<->b", "c<->d"]
        assert len(plan) == 2 and list(plan) == [early, late]

    def test_same_instant_orders_by_link_then_kind(self):
        repair = FaultEvent(0.0, "a<->b", "repair")
        down = FaultEvent(0.0, "a<->b", "down")
        plan = FaultPlan(events=(repair, down))
        assert [e.kind for e in plan.events] == ["down", "repair"]
        assert tuple(FAULT_KINDS) == ("loss", "down", "repair")

    def test_non_event_entries_rejected(self):
        with pytest.raises(TypeError, match="must be FaultEvent"):
            FaultPlan(events=(("0.0", "a<->b", "down"),))

    def test_generate_is_deterministic_and_pool_order_independent(self):
        pool = ["l3", "l1", "l2", "l4"]
        first = FaultPlan.generate(pool, seed=5, corrupt_links=2,
                                   loss_rate=0.05)
        again = FaultPlan.generate(reversed(pool), seed=5, corrupt_links=2,
                                   loss_rate=0.05)
        assert first == again
        assert len(first) == 2
        assert FaultPlan.generate(pool, seed=6, corrupt_links=2,
                                  loss_rate=0.05) != first

    def test_generate_failures_get_repairs_on_other_links(self):
        plan = FaultPlan.generate(["l1", "l2", "l3"], seed=1, corrupt_links=1,
                                  loss_rate=0.1, fail_links=1, fail_at_s=0.2,
                                  repair_after_s=0.3)
        kinds = [e.kind for e in plan.events]
        assert sorted(kinds) == ["down", "loss", "repair"]
        down = next(e for e in plan if e.kind == "down")
        repair = next(e for e in plan if e.kind == "repair")
        lossy = next(e for e in plan if e.kind == "loss")
        assert down.link == repair.link != lossy.link
        assert repair.time == pytest.approx(down.time + 0.3)

    def test_generate_clamps_to_pool_size(self):
        plan = FaultPlan.generate(["only"], seed=0, corrupt_links=5,
                                  loss_rate=0.1, fail_links=5)
        assert plan.links() == ["only"]          # nothing left to fail

    def test_plans_pickle(self):
        plan = one_link_plan()
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestFaultSpec:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(corrupt_links=-1)
        with pytest.raises(ValueError):
            FaultSpec(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(onset_s=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(repair_after_s=0.0)

    def test_explicit_plan_wins(self):
        plan = one_link_plan()
        assert FaultSpec(plan=plan).resolve(network=None) is plan

    def test_default_pool_is_inter_switch_links(self):
        experiment = Scenario("dumbbell", seed=1, hosts_per_side=2).build(0.1)
        plan = FaultSpec(seed=3, corrupt_links=5, loss_rate=0.1) \
            .resolve(experiment.network)
        # The dumbbell has one fabric link; host access links stay healthy.
        assert plan.links() == ["s0<->s1"]

    def test_explicit_pool_overrides_default(self):
        experiment = Scenario("dumbbell", seed=1, hosts_per_side=2).build(0.1)
        plan = FaultSpec(links=("h0<->s0",), corrupt_links=1, loss_rate=0.2) \
            .resolve(experiment.network)
        assert plan.links() == ["h0<->s0"]


class TestFaultInjector:
    def test_unknown_link_fails_with_menu(self):
        experiment = Scenario("dumbbell", seed=1, hosts_per_side=2).build(0.1)
        plan = FaultPlan(events=(FaultEvent(0.0, "s0<->s9", "down"),))
        with pytest.raises(ValueError, match="unknown link 's0<->s9'.*s0<->s1"):
            FaultInjector(experiment.network, plan)

    def test_events_apply_at_their_times(self):
        experiment = Scenario("dumbbell", seed=1, hosts_per_side=2).build(None)
        link = next(l for l in experiment.network.links
                    if l.name == "s0<->s1")
        plan = FaultPlan(events=(FaultEvent(0.01, "s0<->s1", "loss", 0.25),
                                 FaultEvent(0.02, "s0<->s1", "down"),
                                 FaultEvent(0.03, "s0<->s1", "repair")))
        injector = FaultInjector(experiment.network, plan)
        injector.schedule(experiment.sim)
        experiment.sim.run(until=0.015)
        assert link.loss_rate == 0.25 and link.up
        experiment.sim.run(until=0.025)
        assert not link.up
        experiment.sim.run(until=0.04)
        # A repair brings the link back *clean*.
        assert link.up and link.loss_rate == 0.0
        assert injector.events_applied == 3

    def test_per_link_streams_are_independent(self):
        assert link_rng(1, "a").random() == link_rng(1, "a").random()
        assert link_rng(1, "a").random() != link_rng(1, "b").random()
        assert link_rng(1, "a").random() != link_rng(2, "a").random()


class TestRemediationSpec:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RemediationSpec(period_s=0.0)
        with pytest.raises(ValueError):
            RemediationSpec(threshold=0)
        with pytest.raises(ValueError):
            RemediationSpec(min_path_diversity=-1)
        with pytest.raises(ValueError):
            RemediationSpec(repair_time_s=-1.0)

    def test_shipped_policies_registered(self):
        for name in ("do-nothing", "disable-and-repair",
                     "capacity-constrained"):
            assert name in POLICIES

    def test_unknown_policy_fails_with_menu(self):
        with pytest.raises(UnknownRegistration, match="do-nothing"):
            POLICIES.get("cold-reboot")


class TestScenarioIntegration:
    def test_fault_knobs_validate_eagerly(self):
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            quick_losslocal().faults(loss_rate=2.0)

    def test_spec_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            quick_losslocal().faults(one_link_plan(), loss_rate=0.5)
        with pytest.raises(TypeError, match="FaultSpec"):
            quick_losslocal().faults("edge0_0<->agg0_0")

    def test_unknown_policy_fails_at_declaration(self):
        with pytest.raises(UnknownRegistration, match="disable-and-repair"):
            quick_losslocal().remediation("cold-reboot")

    def test_remediation_needs_its_detector_app(self):
        scenario = (Scenario("dumbbell", seed=1, hosts_per_side=2)
                    .workload("messages", offered_load=0.1)
                    .remediation("do-nothing"))
        with pytest.raises(ValueError, match="loss-localization"):
            scenario.build(0.1)


class TestSpecAndSweep:
    def test_round_trip_preserves_faults_and_remediation(self):
        scenario = quick_losslocal(faults=one_link_plan(),
                                   remediation="disable-and-repair")
        spec = scenario.to_spec()
        rebuilt = pickle.loads(pickle.dumps(spec)).to_scenario()
        assert rebuilt.fault_spec.plan == one_link_plan()
        assert rebuilt.remediation_spec.policy == "disable-and-repair"
        assert rebuilt.to_spec().fingerprint() == spec.fingerprint()

    def test_fault_axes_expand(self):
        sweep = (SweepSpec(quick_losslocal(faults=one_link_plan()))
                 .axis("faults.loss_rate", [0.05, 0.1])
                 .axis("remediation.policy",
                       ["do-nothing", "disable-and-repair"]))
        tasks = sweep.expand()
        assert len(tasks) == 4
        rates = {task.spec.faults.loss_rate for task in tasks}
        policies = {task.spec.remediation.policy for task in tasks}
        assert rates == {0.05, 0.1}
        assert policies == {"do-nothing", "disable-and-repair"}
        assert len({task.fingerprint for task in tasks}) == 4

    def test_fault_axes_validate_eagerly(self):
        sweep = SweepSpec(quick_losslocal())
        with pytest.raises(SpecError, match="FaultSpec has no field 'nope'"):
            sweep.axis("faults.nope", [1])
        with pytest.raises(SpecError,
                           match="RemediationSpec has no field 'nope'"):
            sweep.axis("remediation.nope", [1])
        with pytest.raises(SpecError, match="must be faults.<field>"):
            sweep.axis("faults", [1])


class TestEndToEnd:
    DURATION = 0.3

    def _run_raw(self, scenario):
        """The unmapped ExperimentResult plus the live experiment."""
        experiment = scenario.build(self.DURATION)
        return experiment, experiment.run(self.DURATION)

    def test_empty_plan_is_byte_identical_to_no_faults(self):
        baseline_exp, baseline = self._run_raw(quick_losslocal())
        empty_exp, empty = self._run_raw(
            quick_losslocal().faults(FaultPlan()))
        assert empty_exp.fault_injector.events_applied == 0
        assert empty.events_executed == baseline.events_executed
        assert ResultSummary.from_result(empty).as_jsonable() \
            == ResultSummary.from_result(baseline).as_jsonable()

    def test_detector_names_the_corrupting_link(self):
        result = quick_losslocal(faults=one_link_plan()) \
            .run(self.DURATION)
        assert isinstance(result, LossLocalizationResult)
        assert result.fault_events_applied == 1
        assert result.packets_corrupted > 0
        assert result.accused_link == LOSSY_LINK
        assert result.suspects[0].deficit >= 1
        # Every drop this run is fault-attributable corruption.
        assert set(result.drop_reasons) == {"corrupted"}

    def test_healthy_run_accuses_nobody(self):
        result = quick_losslocal().run(self.DURATION)
        assert result.packets_corrupted == 0
        assert result.accused_link is None
        assert all(deficit <= 0 for deficit in result.deficits.values())

    def test_disable_and_repair_cuts_the_penalty(self):
        plan = one_link_plan()
        nothing_exp, nothing = self._run_raw(
            quick_losslocal(faults=plan, remediation="do-nothing"))
        acting_exp, acting = self._run_raw(
            quick_losslocal(faults=plan,
                            remediation=RemediationSpec(
                                policy="disable-and-repair")))
        assert nothing_exp.remediation.links_disabled == 0
        assert acting_exp.remediation.links_disabled == 1
        assert acting_exp.remediation.reroutes >= 1
        assert acting.packets_corrupted < nothing.packets_corrupted
        assert acting.remediation_actions >= 1
        # Both controllers streamed their metric series.
        for experiment in (nothing_exp, acting_exp):
            bundle = experiment.remediation.summarize()
            assert bundle["timeseries"].keys() == ["loss-penalty",
                                                   "worst-tor-diversity"]
            assert bundle["counters"]["ticks"] > 0

    def test_capacity_floor_refuses_the_disable(self):
        experiment, result = self._run_raw(
            quick_losslocal(faults=one_link_plan(),
                            remediation=RemediationSpec(
                                policy="capacity-constrained",
                                min_path_diversity=2)))
        # Disabling the accused link would leave edge0_0 with one fabric
        # link — below the floor of 2 — so the policy must refuse, once.
        assert experiment.remediation.refusals == 1
        assert experiment.remediation.links_disabled == 0
        assert result.packets_corrupted > 0

    def test_scheduled_repair_restores_the_link(self):
        experiment, result = self._run_raw(
            quick_losslocal(faults=one_link_plan(),
                            remediation=RemediationSpec(
                                policy="disable-and-repair",
                                repair_time_s=0.05)))
        controller = experiment.remediation
        assert controller.links_disabled == 1
        assert controller.links_repaired == 1
        lossy = next(l for l in experiment.network.links
                     if l.name == LOSSY_LINK)
        assert lossy.up and lossy.loss_rate == 0.0
        assert result.link_down_transitions == 1
        assert result.link_up_transitions == 1
