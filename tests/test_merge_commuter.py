"""Generated commutativity suite for every registered summary type.

Commuter-style: rather than hand-writing law tests per summary type, the
suite enumerates :data:`repro.collect.SUMMARY_TYPES` and drives the
generators in ``tools/gen_merge_cases.py`` (derived from each type's
constructor/field structure) under hypothesis.  Every law the collection
plane's scale-out story rests on is machine-checked per type:

* commutativity / associativity / identity of ``merge``;
* sharded-fold-vs-serial equality over random partitions and shard
  orders — the exact claim behind shard-count invariance and the
  aggregation tree's shape-freeness;
* delta round-trip exactness (``apply_delta(diff(a, b)) == b``) along
  growth chains of cumulative snapshots, directly and through a
  ``DeltaChannel``/``DeltaDecoder`` pair, across random interleavings of
  many channels into one decoder.

Equality everywhere is canonical-JSON byte-identity.  A new summary type
only has to register itself (``@register_summary``) and give the tool a
generator; the whole suite then applies automatically — and parametrized
enumeration fails loudly if a registered type has no generator at all.

``REPRO_HYPOTHESIS_PROFILE=quick`` shrinks the sweep for CI's docs job.
"""

import importlib.util
import os
import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.collect import (DeltaChannel, DeltaDecoder, SUMMARY_TYPES,
                           summary_copy)

settings.register_profile("quick", max_examples=15)
settings.register_profile("default", max_examples=60)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "gen_merge_cases.py"
_spec = importlib.util.spec_from_file_location("gen_merge_cases", _TOOL)
gen_merge_cases = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_merge_cases)

TYPE_NAMES = sorted(SUMMARY_TYPES)

_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _case(type_name, seed, instances=3):
    rng = random.Random(seed)
    params = gen_merge_cases.case_params(type_name, rng)
    return rng, params, [gen_merge_cases.make_summary(type_name, rng, params)
                         for _ in range(instances)]


class TestGeneratorCoverage:
    def test_every_registered_type_has_a_generator(self):
        # The registry is the source of truth: registering a new summary
        # type without teaching the generator about it fails here, not
        # silently shrinking the suite's coverage.
        for type_name, cls in SUMMARY_TYPES.items():
            rng = random.Random(0)
            instance = gen_merge_cases.make_summary(type_name, rng)
            assert isinstance(instance, cls)
            assert type(gen_merge_cases.empty_like(instance)) is cls

    def test_registry_contains_the_known_monoids(self):
        assert {"CounterSummary", "HistogramSummary", "TopKSummary",
                "SeriesSummary", "SummaryBundle"} <= set(SUMMARY_TYPES)


@pytest.mark.parametrize("type_name", TYPE_NAMES)
class TestGeneratedLaws:
    """One hypothesis sweep of every law, per registered type."""

    @given(seed=_seeds)
    def test_commutativity(self, type_name, seed):
        _, _, (a, b, _) = _case(type_name, seed)
        assert gen_merge_cases.canonical(gen_merge_cases.merged(a, b)) \
            == gen_merge_cases.canonical(gen_merge_cases.merged(b, a))

    @given(seed=_seeds)
    def test_associativity(self, type_name, seed):
        _, _, (a, b, c) = _case(type_name, seed)
        left = gen_merge_cases.merged(gen_merge_cases.merged(a, b), c)
        right = gen_merge_cases.merged(a, gen_merge_cases.merged(b, c))
        assert gen_merge_cases.canonical(left) == gen_merge_cases.canonical(right)

    @given(seed=_seeds)
    def test_identity(self, type_name, seed):
        _, _, (a, _, _) = _case(type_name, seed)
        empty = gen_merge_cases.empty_like(a)
        assert gen_merge_cases.canonical(gen_merge_cases.merged(a, empty)) \
            == gen_merge_cases.canonical(a)
        assert gen_merge_cases.canonical(gen_merge_cases.merged(empty, a)) \
            == gen_merge_cases.canonical(a)

    @given(seed=_seeds, shard_count=st.integers(min_value=1, max_value=5))
    def test_sharded_fold_equals_serial(self, type_name, seed, shard_count):
        rng, _, instances = _case(type_name, seed, instances=6)
        serial = gen_merge_cases.canonical(gen_merge_cases.merged(*instances))
        shards = [[] for _ in range(shard_count)]
        for instance in instances:
            shards[rng.randrange(shard_count)].append(instance)
        partials = [gen_merge_cases.merged(*shard) for shard in shards if shard]
        rng.shuffle(partials)
        assert gen_merge_cases.canonical(gen_merge_cases.merged(*partials)) \
            == serial

    @given(seed=_seeds)
    def test_delta_roundtrip_reconstructs_exactly(self, type_name, seed):
        # apply(diff(a, b)) == b along a cumulative growth chain, when the
        # type can express the transition; the channel's full-keyframe
        # fallback covers the rest (checked by test_channel_stream below).
        rng, params, _ = _case(type_name, seed)
        state = gen_merge_cases.make_summary(type_name, rng, params)
        prev = summary_copy(state)
        for _ in range(4):
            gen_merge_cases.grow(state, rng)
            if not hasattr(state, "diff"):
                pytest.skip(f"{type_name} has no diff/apply_delta pair")
            try:
                payload = state.diff(prev)
            except ValueError:
                prev = summary_copy(state)
                continue
            replayed = summary_copy(prev)
            replayed.apply_delta(payload)
            assert gen_merge_cases.canonical(replayed) \
                == gen_merge_cases.canonical(state)
            prev = summary_copy(state)

    @given(seed=_seeds, resync_every=st.sampled_from([0, 2, 3]))
    def test_channel_stream_tracks_sender_state(self, type_name, seed,
                                                resync_every):
        rng, params, _ = _case(type_name, seed)
        state = gen_merge_cases.make_summary(type_name, rng, params)
        channel = DeltaChannel(resync_every=resync_every)
        decoder = DeltaDecoder()
        for _ in range(5):
            gen_merge_cases.grow(state, rng)
            decoded = decoder.decode(("chan",), channel.encode(state))
            assert decoded is not None
            assert gen_merge_cases.canonical(decoded) \
                == gen_merge_cases.canonical(state)
        assert decoder.gaps == 0


class TestInterleavedChannels:
    @given(seed=_seeds)
    def test_many_channels_interleave_through_one_decoder(self, seed):
        # One shard decodes many sources' delta channels with units
        # arriving in a random interleaving; every channel's reconstruction
        # must still track its own sender exactly (channels are
        # independent — the property the shard's flush loop relies on).
        rng = random.Random(seed)
        sources = {}
        for type_name in TYPE_NAMES:
            params = gen_merge_cases.case_params(type_name, rng)
            sources[type_name] = {
                "state": gen_merge_cases.make_summary(type_name, rng, params),
                "channel": DeltaChannel(resync_every=rng.choice((0, 2))),
            }
        decoder = DeltaDecoder()
        pushes = [name for name in sources for _ in range(4)]
        rng.shuffle(pushes)
        latest_decoded = {}
        for name in pushes:
            source = sources[name]
            gen_merge_cases.grow(source["state"], rng)
            unit = source["channel"].encode(source["state"])
            decoded = decoder.decode((name,), unit)
            assert decoded is not None
            latest_decoded[name] = gen_merge_cases.canonical(decoded)
            assert latest_decoded[name] \
                == gen_merge_cases.canonical(source["state"])
        assert decoder.gaps == 0 and not decoder.take_resyncs()


class TestToolCli:
    def test_run_report_is_clean_for_all_types(self):
        report = gen_merge_cases.run(cases=5, seed=11)
        assert report["ok"], report["violations"]
        assert set(report["types"]) == set(SUMMARY_TYPES)

    def test_main_exit_status(self, capsys):
        assert gen_merge_cases.main(["--cases", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        for type_name in TYPE_NAMES:
            assert type_name in out
