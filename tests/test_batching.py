"""Tests for the batched injection path and the same-flow lookup memos.

The contract under test everywhere: batching is a *mechanical* fast path —
results, statistics, and the executed event sequence must be identical to
the equivalent per-packet calls.
"""

import pytest

from repro.core.compiler import compile_tpp
from repro.endhost.dataplane import DataplaneShim
from repro.endhost.filters import FilterEntry, PacketFilter
from repro.net.link import mbps
from repro.net.packet import udp_packet
from repro.net.sim import Simulator
from repro.net.topology import Network, build_dumbbell
from repro.switches.pipeline import FlowLookupCache, Pipeline
from repro.switches.tables import FlowEntry, Group, GroupTable


def small_net():
    sim = Simulator()
    topo = build_dumbbell(sim, hosts_per_side=2, link_rate_bps=mbps(100))
    return sim, topo.network


def burst(src: str, dst: str, count: int, size: int = 700):
    return [udp_packet(src, dst, size, dport=2000) for _ in range(count)]


class TestHostSendMany:
    def test_burst_matches_sequential_sends(self):
        outcomes = []
        for batched in (False, True):
            sim, net = small_net()
            h0, h3 = net.hosts["h0"], net.hosts["h3"]
            h3.keep_received_log = True
            packets = burst("h0", "h3", 12)
            if batched:
                assert h0.send_many(packets) == 12
            else:
                for packet in packets:
                    assert h0.send(packet)
            net.stop_switch_processes()
            sim.run_until_idle()
            outcomes.append((h3.packets_received, h0.packets_sent,
                             sim.events_executed,
                             [p.size for p in h3.received_log]))
        assert outcomes[0] == outcomes[1]

    def test_send_many_counts_only_accepted(self):
        sim, net = small_net()
        h0 = net.hosts["h0"]
        h0.uplink_port.up = False
        assert h0.send_many(burst("h0", "h3", 3)) == 0

    def test_send_many_matches_loop_at_queue_capacity_boundary(self):
        # Regression: an idle transmitter dequeues the burst's head before
        # later packets hit the capacity check, so a burst one packet over
        # capacity is fully accepted — exactly like a loop of send() calls.
        outcomes = []
        for batched in (False, True):
            sim, net = small_net()
            h0 = net.hosts["h0"]
            packet_size = udp_packet("h0", "h3", 700).size
            h0.uplink_port.queue.capacity_bytes = 3 * packet_size
            packets = burst("h0", "h3", 4)
            if batched:
                accepted = h0.uplink_port.send_many(packets)
            else:
                accepted = sum(h0.uplink_port.send(p) for p in packets)
            outcomes.append((accepted,
                             h0.uplink_port.queue.packets_dropped_total))
        assert outcomes[0] == outcomes[1]
        assert outcomes[1] == (4, 0)

    def test_port_send_many_drop_accounting_when_link_down(self):
        sim, net = small_net()
        h0 = net.hosts["h0"]
        link = h0.uplink_port.link
        link.set_down()
        packets = burst("h0", "h3", 4)
        assert h0.send_many(packets) == 0
        assert all(p.dropped for p in packets)
        assert h0.uplink_port.queue.packets_dropped_total == 4


class TestLinkDeliverBurst:
    def test_burst_delivery_and_accounting(self):
        sim, net = small_net()
        h0 = net.hosts["h0"]
        uplink = h0.uplink_port
        link = uplink.link
        before_packets = link.total_packets
        packets = burst("h0", "h3", 5)
        delivered = link.deliver_burst(packets, uplink)
        net.stop_switch_processes()
        sim.run_until_idle()
        assert delivered == 5
        assert link.total_packets == before_packets + 5
        assert uplink.peer.rx_packets >= 5
        assert net.hosts["h3"].packets_received == 5

    def test_burst_dropped_when_link_down(self):
        sim, net = small_net()
        uplink = net.hosts["h0"].uplink_port
        uplink.link.set_down()
        packets = burst("h0", "h3", 3)
        assert uplink.link.deliver_burst(packets, uplink) == 0
        assert all(p.dropped for p in packets)
        assert uplink.queue.packets_dropped_total == 3

    def test_burst_dropped_when_sending_port_admin_down(self):
        sim, net = small_net()
        uplink = net.hosts["h0"].uplink_port
        uplink.up = False                        # port down, link itself up
        packets = burst("h0", "h3", 3)
        assert uplink.link.deliver_burst(packets, uplink) == 0
        assert all(p.dropped for p in packets)
        assert uplink.tx_packets == 0

    def test_burst_to_down_peer_accounts_like_per_packet_path(self):
        # Peer-side failure: tx/link counters stand (the burst left the
        # port), the packets are lost with the per-packet path's reason,
        # and no queue drop counters move — mirroring _deliver_to_peer.
        sim, net = small_net()
        uplink = net.hosts["h0"].uplink_port
        uplink.peer.up = False
        packets = burst("h0", "h3", 3)
        assert uplink.link.deliver_burst(packets, uplink) == 0
        assert all(p.drop_reason == "peer port down" for p in packets)
        assert uplink.tx_packets == 3
        assert uplink.link.total_packets == 3
        assert uplink.peer.rx_packets == 0
        assert uplink.queue.packets_dropped_total == 0


class TestSwitchReceiveBatch:
    def test_batch_matches_sequential_receives(self):
        compiled = compile_tpp("PUSH [Switch:SwitchID]", num_hops=4)
        outcomes = []
        for batched in (False, True):
            sim, net = small_net()
            switch = net.switches["s0"]
            in_port = net.hosts["h0"].uplink_port.peer
            packets = burst("h0", "h3", 6)
            for packet in packets:
                packet.attach_tpp(compiled.clone_tpp())
            if batched:
                switch.receive_batch(packets, in_port)
            else:
                for packet in packets:
                    switch.receive(packet, in_port)
            net.stop_switch_processes()
            sim.run_until_idle()
            received = net.hosts["h3"].packets_received
            hops = [p.tpp.hop_number for p in packets]
            words = [p.tpp.pushed_words() for p in packets]
            outcomes.append((received, hops, words, sim.events_executed,
                             switch.packets_forwarded))
        assert outcomes[0] == outcomes[1]
        # Both switches executed the TPP: two pushed switch ids per packet.
        assert all(len(words) == 2 for words in outcomes[1][2])


class TestFlowLookupCache:
    def _pipeline_with_routes(self):
        pipeline = Pipeline(num_stages=2)
        pipeline.forwarding_table.install(
            FlowEntry(match={"dst": "h1"}, action="forward", output_port=1))
        pipeline.forwarding_table.install(
            FlowEntry(match={"dst": "h2"}, action="forward", output_port=2))
        return pipeline

    def test_memo_hits_match_full_scans(self):
        reference = self._pipeline_with_routes()
        cached = self._pipeline_with_routes()
        cache = cached.lookup_cache()
        packets = (burst("h0", "h1", 4) + burst("h0", "h2", 3)
                   + burst("h0", "h1", 2))
        for packet in packets:
            expect = reference.process(packet)
            got = cache.process(packet)
            assert (got.action, got.output_port) == (expect.action, expect.output_port)
            assert got.matched_entry.entry_id is not None
        ref_table = reference.forwarding_table
        got_table = cached.forwarding_table
        assert got_table.lookup_stats.packets == ref_table.lookup_stats.packets
        assert got_table.lookup_stats.bytes == ref_table.lookup_stats.bytes
        assert got_table.match_stats.packets == ref_table.match_stats.packets
        per_entry = lambda table: [e.stats.packets for e in table.entries]
        assert per_entry(got_table) == per_entry(ref_table)

    def test_table_change_invalidates_memo(self):
        pipeline = self._pipeline_with_routes()
        cache = pipeline.lookup_cache()
        packet = udp_packet("h0", "h1", 100)
        assert cache.process(packet).output_port == 1
        pipeline.forwarding_table.install(
            FlowEntry(match={"dst": "h1"}, action="forward", output_port=7,
                      priority=10))
        assert cache.process(udp_packet("h0", "h1", 100)).output_port == 7

    def test_non_flow_field_entry_disables_memo(self):
        pipeline = self._pipeline_with_routes()
        # An entry matching on a non-flow attribute (packet size) makes
        # memoization unsafe; the cache must fall back to full scans.
        pipeline.forwarding_table.install(
            FlowEntry(match={"size": 842}, action="drop", priority=99))
        cache = pipeline.lookup_cache()
        small = udp_packet("h0", "h1", 100)
        big = udp_packet("h0", "h1", 800)   # same flow key, 842B on the wire
        assert cache.process(small).action == "forward"
        assert cache.process(big).action == "drop"

    def test_process_batch_equals_per_packet(self):
        reference = self._pipeline_with_routes()
        batched = self._pipeline_with_routes()
        packets = burst("h0", "h1", 5) + burst("h0", "h2", 5)
        expect = [reference.process(p) for p in packets]
        got = batched.process_batch(packets)
        assert [(r.action, r.output_port) for r in got] == \
               [(r.action, r.output_port) for r in expect]


class TestGroupSelectionMemo:
    def test_memoized_selection_is_stable_and_invalidated(self):
        table = GroupTable()
        table.install(Group(group_id=1, ports=[0, 1, 2], policy="hash"))
        packets = [udp_packet("a", "b", 100, sport=s) for s in (1, 2, 3, 1, 2)]
        first = [table.select(1, p) for p in packets]
        second = [table.select(1, p) for p in packets]
        assert first == second
        table.install(Group(group_id=1, ports=[5], policy="hash"))
        assert table.select(1, packets[0]) == 5

    def test_in_place_group_mutation_is_never_served_stale(self):
        table = GroupTable()
        group = table.groups.setdefault(
            1, Group(group_id=1, ports=[0, 1], policy="vlan"))
        packet = udp_packet("a", "b", 100)
        packet.vlan = 1
        assert table.select(1, packet) == 1      # memo populated
        group.ports = [7]                        # caller mutates in place
        assert table.select(1, packet) == 7      # state is part of the key


class TestShimBurst:
    def test_send_burst_stamps_and_counts(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s")
        net.connect("a", "s", rate_bps=mbps(100))
        net.connect("b", "s", rate_bps=mbps(100))
        net.install_shortest_path_routes()
        shim = DataplaneShim(net.hosts["a"])
        compiled = compile_tpp("PUSH [Switch:SwitchID]", num_hops=4)
        shim.install_filter(FilterEntry(filter=PacketFilter(protocol="udp"),
                                        app_id=1, tpp_template=compiled,
                                        sample_frequency=2))
        sent = shim.send_burst(burst("a", "b", 8))
        assert sent == 8
        assert shim.bursts_sent == 1
        # Deterministic 1-in-2 sampling stamps exactly half the burst.
        assert shim.tpps_attached == 4


class TestBatchedPropagationLeg:
    """The transmit chain schedules (propagation, next-serialisation) in one
    schedule_many burst; the event order must match the unbatched chain."""

    def test_delivery_times_match_store_and_forward_reference(self):
        # 10 packets through one bottleneck hop: delivery time of packet i at
        # the far host must be (i+1) * serialisation + 2 hops of serialisation
        # pipelining + propagation delays, exactly as the unbatched
        # schedule()/schedule() chain produced.
        sim, net = small_net()
        h0, h3 = net.hosts["h0"], net.hosts["h3"]
        h3.keep_received_log = True
        count, size = 10, 700
        packets = burst("h0", "h3", count, size=size)
        for packet in packets:
            h0.send(packet)
        wire = packets[0].size
        rate, delay = mbps(100), 50e-6
        tx = wire * 8.0 / rate
        net.stop_switch_processes()       # keep run_until_idle finite
        sim.run_until_idle()
        assert len(h3.received_log) == count
        for i, packet in enumerate(h3.received_log):
            # Serialise i+1 times back-to-back on the access link, then one
            # store-and-forward serialisation per switch hop (s0, s1), plus
            # three propagation delays.
            expected = (i + 1) * tx + 2 * tx + 3 * delay
            assert packet.delivered_at == pytest.approx(expected, rel=1e-12)
        # FIFO order is preserved.
        assert [p.flow_id for p in h3.received_log] == \
            [p.flow_id for p in packets]

    def test_bench_workload_event_totals_batch_vs_unbatched_injection(self):
        # The bench_event_throughput workload (scaled down) must execute the
        # exact same event sequence whether bursts enter through send_burst
        # or a loop of host.send calls — and therefore land on identical
        # event and TPP-hop totals.
        from repro.net.link import gbps
        from repro.session import Scenario

        def run(use_batch: bool):
            experiment = (
                Scenario("fat-tree", seed=1, k=4, link_rate_bps=gbps(1),
                         link_delay_s=5e-6)
                .tpp("event-throughput",
                     "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]",
                     num_hops=8, filter=PacketFilter(protocol="udp"))
                .workload("cross-pod-bursts", use_batch=use_batch)
                .build())
            experiment.sim.run(until=5e-4)
            tpp_hops = sum(switch.tcpu.tpps_executed
                           for switch in experiment.network.switches.values())
            delivered = tuple(sorted(
                (name, host.packets_received)
                for name, host in experiment.network.hosts.items()))
            return experiment.sim.events_executed, tpp_hops, delivered

        assert run(True) == run(False)
