#!/usr/bin/env python3
"""Generate and machine-check merge-algebra cases for every summary type.

Commuter-style checker for the collection plane's algebra: instead of
hand-writing one law test per summary type (and silently missing the next
type someone registers), this tool *enumerates* the registry
(:data:`repro.collect.SUMMARY_TYPES`), derives a generator for each type
from its constructor/field structure, and machine-checks the laws every
scale-out claim rests on:

* **commutativity** — ``merge(a, b) == merge(b, a)``;
* **associativity** — ``merge(merge(a, b), c) == merge(a, merge(b, c))``;
* **identity** — merging an empty summary of the same shape is a no-op;
* **sharded fold vs serial** — folding any partition of N instances,
  shard-by-shard then across shards, equals the serial left fold (the
  exact claim behind :meth:`repro.collect.CollectPlane.merge`);
* **delta round-trip** — along any growth chain a0 → a1 → … (cumulative
  snapshots, as aggregators produce), ``apply_delta(diff)`` reconstructs
  each successor byte-identically, both directly and through a
  :class:`~repro.collect.delta.DeltaChannel`/``DeltaDecoder`` pair.

Equality everywhere is canonical-JSON equality of
:func:`repro.collect.summary_jsonable` — the byte-identity the
differential tests use, not a loose numeric comparison.

``tests/test_merge_commuter.py`` drives the same generators under
hypothesis (random seeds and interleavings); the CLI here is the
standalone/CI face::

    python tools/gen_merge_cases.py --cases 25 --seed 1 [--json]

Exit status 0 when every registered type satisfies every law, 1 with one
``type: law: detail`` line per violation otherwise.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from typing import Any, Callable, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.collect import (CounterSummary, DeltaChannel, DeltaDecoder,  # noqa: E402
                           HistogramSummary, SUMMARY_TYPES, SeriesSummary,
                           SummaryBundle, TopKSummary, summary_copy,
                           summary_jsonable)

#: The laws checked per registered type, in report order.
LAWS = ("commutativity", "associativity", "identity", "sharded-fold",
        "delta-roundtrip", "delta-channel")

#: Histogram edge menus the generator draws from (per-type field structure:
#: HistogramSummary instances only merge when their edges match, so every
#: instance in one case shares one menu entry).
_EDGE_MENUS = ([0.0, 1.0, 5.0], [0.0, 0.5, 1.0, 2.0, 4.0], [10.0, 20.0])

_WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta")


def canonical(summary: Any) -> str:
    """The byte-identity witness: canonical JSON of the jsonable form."""
    return json.dumps(summary_jsonable(summary), sort_keys=True)


# ---------------------------------------------------------------------------
# Per-type generation, derived from each type's constructor field structure
# ---------------------------------------------------------------------------
def _make_counter(rng: random.Random, params: dict) -> CounterSummary:
    summary = CounterSummary()
    for _ in range(rng.randrange(0, 6)):
        summary.add(rng.choice(_WORDS), rng.randrange(1, 50))
    return summary


def _make_histogram(rng: random.Random, params: dict) -> HistogramSummary:
    summary = HistogramSummary(params["edges"])
    for _ in range(rng.randrange(0, 8)):
        summary.observe(rng.uniform(-1.0, 25.0), rng.randrange(1, 4))
    return summary


def _make_topk(rng: random.Random, params: dict) -> TopKSummary:
    summary = TopKSummary(params["k"])
    for _ in range(rng.randrange(0, 8)):
        summary.observe(rng.choice(_WORDS), rng.randrange(1, 30))
    return summary


def _make_series(rng: random.Random, params: dict) -> SeriesSummary:
    summary = SeriesSummary()
    for _ in range(rng.randrange(0, 6)):
        summary.add(round(rng.uniform(0.0, 10.0), 4), rng.choice(_WORDS),
                    rng.randrange(0, 100))
    return summary


def _make_bundle(rng: random.Random, params: dict) -> SummaryBundle:
    parts: dict[str, Any] = {}
    for key in params["part_keys"]:
        kind = params["part_kinds"][key]
        parts[key] = _MAKERS[kind](rng, params)
    return SummaryBundle(parts)


_MAKERS: dict[str, Callable[[random.Random, dict], Any]] = {
    "CounterSummary": _make_counter,
    "HistogramSummary": _make_histogram,
    "TopKSummary": _make_topk,
    "SeriesSummary": _make_series,
    "SummaryBundle": _make_bundle,
}

#: Growth steps (in-place mutation through the public API) — used to build
#: the cumulative-snapshot chains the delta round-trip law runs along.
_GROWERS: dict[str, Callable[[Any, random.Random], None]] = {
    "CounterSummary": lambda s, rng: s.add(rng.choice(_WORDS),
                                           rng.randrange(1, 20)),
    "HistogramSummary": lambda s, rng: s.observe(rng.uniform(-1.0, 25.0)),
    "TopKSummary": lambda s, rng: s.observe(rng.choice(_WORDS),
                                            rng.randrange(1, 10)),
    "SeriesSummary": lambda s, rng: s.add(round(rng.uniform(0.0, 10.0), 4),
                                          rng.choice(_WORDS),
                                          rng.randrange(0, 100)),
}


def case_params(type_name: str, rng: random.Random) -> dict:
    """Shared shape parameters for one case (all instances must merge)."""
    params: dict[str, Any] = {
        "edges": rng.choice(_EDGE_MENUS),
        "k": rng.randrange(2, 6),
    }
    if type_name == "SummaryBundle":
        kinds = [k for k in _MAKERS if k != "SummaryBundle"]
        keys = rng.sample(_WORDS, rng.randrange(1, 4))
        params["part_keys"] = keys
        params["part_kinds"] = {key: rng.choice(kinds) for key in keys}
    return params


def make_summary(type_name: str, rng: random.Random,
                 params: Optional[dict] = None) -> Any:
    """One randomized instance of a registered summary type."""
    if type_name not in _MAKERS:
        raise KeyError(f"no generator for summary type {type_name!r}")
    if params is None:
        params = case_params(type_name, rng)
    return _MAKERS[type_name](rng, params)


def empty_like(summary: Any) -> Any:
    """The identity element matching ``summary``'s shape."""
    if isinstance(summary, CounterSummary):
        return CounterSummary()
    if isinstance(summary, HistogramSummary):
        return HistogramSummary(summary.edges)
    if isinstance(summary, TopKSummary):
        return TopKSummary(summary.k)
    if isinstance(summary, SeriesSummary):
        return SeriesSummary()
    if isinstance(summary, SummaryBundle):
        return SummaryBundle({key: empty_like(part)
                              for key, part in summary.items()})
    raise TypeError(f"no identity shape for {type(summary).__name__}")


def grow(summary: Any, rng: random.Random, steps: int = 3) -> None:
    """Mutate ``summary`` in place: the next cumulative snapshot state."""
    if isinstance(summary, SummaryBundle):
        for part in summary.parts.values():
            grow(part, rng, steps)
        return
    grower = _GROWERS[type(summary).__name__]
    for _ in range(rng.randrange(0, steps + 1)):
        grower(summary, rng)


def merged(*summaries: Any) -> Any:
    """Left fold of copies — never mutates the inputs."""
    result = summary_copy(summaries[0])
    for other in summaries[1:]:
        result.merge(summary_copy(other))
    return result


# ---------------------------------------------------------------------------
# The laws
# ---------------------------------------------------------------------------
def check_laws(type_name: str, seed: int) -> list[str]:
    """Check every law for one generated case; returns violation strings."""
    rng = random.Random(seed)
    params = case_params(type_name, rng)
    instances = [make_summary(type_name, rng, params) for _ in range(5)]
    violations: list[str] = []
    a, b, c = instances[:3]

    if canonical(merged(a, b)) != canonical(merged(b, a)):
        violations.append(f"{type_name}: commutativity: "
                          f"merge(a,b) != merge(b,a) at seed {seed}")
    if canonical(merged(merged(a, b), c)) != canonical(merged(a, merged(b, c))):
        violations.append(f"{type_name}: associativity: "
                          f"(a+b)+c != a+(b+c) at seed {seed}")
    empty = empty_like(a)
    if (canonical(merged(a, empty)) != canonical(a)
            or canonical(merged(empty, a)) != canonical(a)):
        violations.append(f"{type_name}: identity: "
                          f"empty is not a unit at seed {seed}")

    # Sharded fold vs serial: any partition, any shard order.
    serial = canonical(merged(*instances))
    shard_count = rng.randrange(2, 4)
    shards: list[list[Any]] = [[] for _ in range(shard_count)]
    for instance in instances:
        shards[rng.randrange(shard_count)].append(instance)
    partials = [merged(*shard) for shard in shards if shard]
    rng.shuffle(partials)
    if canonical(merged(*partials)) != serial:
        violations.append(f"{type_name}: sharded-fold: partition fold != "
                          f"serial fold at seed {seed}")

    # Delta round-trip along a growth chain of cumulative snapshots.
    state = make_summary(type_name, rng, params)
    channel = DeltaChannel(resync_every=rng.choice((0, 2)))
    decoder = DeltaDecoder()
    prev = summary_copy(state)
    for step in range(4):
        grow(state, rng)
        snapshot = summary_copy(state)
        differ = getattr(snapshot, "diff", None)
        if callable(differ):
            try:
                payload = differ(prev)
            except ValueError:
                pass                         # inexpressible: channel falls back
            else:
                replayed = summary_copy(prev)
                replayed.apply_delta(payload)
                if canonical(replayed) != canonical(snapshot):
                    violations.append(
                        f"{type_name}: delta-roundtrip: apply(diff) != "
                        f"target at seed {seed} step {step}")
        unit = channel.encode(state)
        decoded = decoder.decode(("case", type_name), unit)
        if decoded is None or canonical(decoded) != canonical(state):
            violations.append(f"{type_name}: delta-channel: decoded stream "
                              f"!= sender state at seed {seed} step {step}")
        prev = snapshot
    return violations


def run(cases: int, seed: int) -> dict:
    """Check every registered type over ``cases`` generated cases each."""
    report: dict[str, Any] = {"cases_per_type": cases, "base_seed": seed,
                              "types": {}, "violations": []}
    for type_name in sorted(SUMMARY_TYPES):
        failures: list[str] = []
        for case in range(cases):
            failures.extend(check_laws(type_name, seed + case))
        report["types"][type_name] = {
            "cases": cases, "laws": list(LAWS),
            "ok": not failures,
        }
        report["violations"].extend(failures)
    report["ok"] = not report["violations"]
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", type=int, default=25,
                        help="generated cases per registered type")
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed for case generation")
    parser.add_argument("--json", action="store_true",
                        help="emit the full report as JSON on stdout")
    args = parser.parse_args(argv)
    report = run(args.cases, args.seed)
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for type_name, entry in report["types"].items():
            status = "ok" if entry["ok"] else "FAIL"
            print(f"{type_name}: {entry['cases']} cases x "
                  f"{len(entry['laws'])} laws: {status}")
        for violation in report["violations"]:
            print(violation, file=sys.stderr)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
