#!/usr/bin/env python3
"""Aggregate the committed ``BENCH_*.json`` artifacts into one trend report.

Every benchmark writes its artifact through ``benchmarks/_provenance.py``,
so each carries a ``provenance`` block (git commit, python, host, cpu
count) answering "which code produced this number?".  This tool walks all
``BENCH_*.json`` files in the repo root (or a given directory), *fails*
when any artifact is missing a valid provenance block — an unstamped
number is untrustworthy and un-trendable — and prints the performance
trajectory: the headline metrics (events/sec, wall times, speedups,
ratios) per artifact alongside the commit that produced them.

Exit status 0 when every artifact validates, 1 otherwise (one
``file: message`` line per violation), 2 when no artifacts are found.

Usage::

    python tools/bench_trend.py            # scan the repo root
    python tools/bench_trend.py some/dir   # scan a directory
"""

from __future__ import annotations

import json
import math
import re
import sys
from pathlib import Path

#: A provenance block must carry these keys (from repro.obs.provenance).
REQUIRED_PROVENANCE = {
    "git_commit": str,
    "python": str,
    "implementation": str,
    "platform": str,
    "machine": str,
    "cpu_count": int,
}

#: Leaf keys that count as headline metrics in the trend report.
HEADLINE_KEY = re.compile(
    r"(_per_s$|_per_sec$|speedup|^wall_s$|_wall_s$|ratio$|reduction$|"
    r"^overhead$|^measured$)")

#: Tree branches that are per-run noise, not trajectory.
SKIP_BRANCHES = {"provenance", "runs"}


def validate_provenance(artifact: dict) -> list[str]:
    """Violations in one loaded artifact's provenance block (empty = valid)."""
    block = artifact.get("provenance")
    if not isinstance(block, dict):
        return ["missing 'provenance' block (write the artifact through "
                "benchmarks/_provenance.write_artifact)"]
    errors = []
    for key, kind in REQUIRED_PROVENANCE.items():
        value = block.get(key)
        if not isinstance(value, kind) or (kind is str and not value):
            errors.append(f"provenance.{key} must be a non-empty "
                          f"{kind.__name__}, got {value!r}")
    return errors


def headline_metrics(node, prefix: str = "") -> list[tuple[str, float]]:
    """Flatten the numeric leaves whose keys look like headline metrics."""
    metrics: list[tuple[str, float]] = []
    if not isinstance(node, dict):
        return metrics
    for key, value in node.items():
        if key in SKIP_BRANCHES:
            continue
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            metrics.extend(headline_metrics(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool) \
                and math.isfinite(value) and HEADLINE_KEY.search(key):
            metrics.append((path, float(value)))
    return metrics


def _format_metric(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def report(paths: list[Path]) -> tuple[list[str], list[str]]:
    """(report lines, violation lines) over the artifact files."""
    lines: list[str] = []
    violations: list[str] = []
    for path in paths:
        try:
            artifact = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            violations.append(f"{path}: {exc}")
            continue
        if not isinstance(artifact, dict):
            violations.append(f"{path}: top level must be an object")
            continue
        problems = validate_provenance(artifact)
        violations.extend(f"{path}: {problem}" for problem in problems)
        if problems:
            continue
        commit = artifact["provenance"]["git_commit"]
        lines.append(f"{path.name}  [{artifact.get('benchmark', '?')}]"
                     f"  @ {commit[:12]}")
        metrics = headline_metrics(artifact)
        if not metrics:
            lines.append("    (no headline metrics)")
        for name, value in metrics:
            lines.append(f"    {name:<44s} {_format_metric(value):>14s}")
    return lines, violations


def main(argv: list[str]) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"{root}: not a directory", file=sys.stderr)
        return 2
    paths = sorted(root.glob("BENCH_*.json"))
    if not paths:
        print(f"{root}: no BENCH_*.json artifacts found", file=sys.stderr)
        return 2
    lines, violations = report(paths)
    for line in violations:
        print(line)
    if lines:
        print(f"benchmark trajectory ({len(paths)} artifacts in {root}):")
        for line in lines:
            print(f"  {line}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
