#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace-event JSON file's minimal schema.

The exporters (:mod:`repro.obs.perfetto`) emit the *JSON Object Format*:
a top-level object with a ``traceEvents`` list of ``"X"`` (complete),
``"C"`` (counter — the network exporter's queue-occupancy and
link-utilization series), and ``"M"`` (metadata) events.  This checker
pins the subset the repo relies on, so CI catches a malformed export
before anyone loads it into https://ui.perfetto.dev:

* the top level is an object with a ``traceEvents`` list;
* every event is an object with string ``ph`` and ``name``, and integer
  ``pid`` / ``tid``;
* ``"X"`` events carry finite numeric ``ts`` and ``dur >= 0``, and
  ``args`` (when present) is an object;
* ``"C"`` events carry finite numeric ``ts`` and a non-empty ``args``
  object whose values are all finite numbers (each key is one counter
  series on the track);
* ``"M"`` events name a known metadata record (``process_name`` /
  ``thread_name``) and carry a ``name`` arg inside ``args``;
* per-track metadata is consistent: every ``tid`` that carries ``"X"``
  slices is either the main track (tid 0) or is named by exactly one
  ``thread_name`` record for its ``(pid, tid)``;
* no other phases are emitted.

Exit status 0 when the file validates, 1 otherwise (one
``file: message`` line per violation).  Importable too:
:func:`validate_trace` returns the violation list for a loaded object.

Usage::

    python tools/check_trace_schema.py trace.json [more.json ...]
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: The only phases the exporters emit.
ALLOWED_PHASES = {"X", "C", "M"}

#: The metadata records the exporter emits.
ALLOWED_METADATA = {"process_name", "thread_name"}


def _is_finite_number(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


def validate_trace(trace) -> list[str]:
    """Every schema violation in a loaded trace object (empty = valid)."""
    errors: list[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top level must have a 'traceEvents' list"]
    # Per-track metadata accounting: (pid, tid) -> thread_name record count,
    # plus the (pid, tid) pairs that carry slices and need naming.
    named_tracks: dict[tuple, int] = {}
    slice_tracks: set[tuple] = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in ALLOWED_PHASES:
            errors.append(f"{where}: ph must be one of "
                          f"{sorted(ALLOWED_PHASES)}, got {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: name must be a string")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int) \
                    or isinstance(event.get(field), bool):
                errors.append(f"{where}: {field} must be an integer")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}: args must be an object")
        track = (event.get("pid"), event.get("tid"))
        if phase == "X":
            for field in ("ts", "dur"):
                if not _is_finite_number(event.get(field)):
                    errors.append(f"{where}: X event needs finite "
                                  f"numeric {field}")
            if _is_finite_number(event.get("dur")) and event["dur"] < 0:
                errors.append(f"{where}: dur must be >= 0")
            slice_tracks.add(track)
        elif phase == "C":
            if not _is_finite_number(event.get("ts")):
                errors.append(f"{where}: C event needs finite numeric ts")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: C event needs a non-empty args "
                              f"object (the counter values)")
            else:
                for key, value in args.items():
                    if not _is_finite_number(value):
                        errors.append(f"{where}: counter args[{key!r}] must "
                                      f"be a finite number, got {value!r}")
        else:                                   # "M"
            if event.get("name") not in ALLOWED_METADATA:
                errors.append(f"{where}: metadata name must be one of "
                              f"{sorted(ALLOWED_METADATA)}")
            if not isinstance(args, dict) \
                    or not isinstance(args.get("name"), str):
                errors.append(f"{where}: metadata needs args.name string")
            elif event.get("name") == "thread_name":
                named_tracks[track] = named_tracks.get(track, 0) + 1
    for track in sorted(slice_tracks, key=str):
        pid, tid = track
        if tid == 0:
            continue                             # the main track is implicit
        count = named_tracks.get(track, 0)
        if count == 0:
            errors.append(f"track pid={pid} tid={tid} carries X slices but "
                          f"has no thread_name metadata record")
        elif count > 1:
            errors.append(f"track pid={pid} tid={tid} is named by {count} "
                          f"thread_name records; expected exactly one")
    return errors


def check_file(path: Path) -> list[str]:
    try:
        trace = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return validate_trace(trace)


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_trace_schema.py trace.json [more.json ...]",
              file=sys.stderr)
        return 2
    failed = False
    for name in argv:
        path = Path(name)
        problems = check_file(path)
        for problem in problems:
            print(f"{path}: {problem}")
            failed = True
        if not problems:
            events = json.loads(path.read_text(encoding="utf-8"))["traceEvents"]
            print(f"{path}: OK ({len(events)} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
