#!/usr/bin/env python3
"""Verify that relative markdown links in the repo's documentation resolve.

Checks every ``[text](target)`` link in the given markdown files (default:
README.md, ROADMAP.md, CHANGES.md, PAPER.md, and docs/*.md — PAPERS.md is
excluded: its text is extracted from upstream sources and carries image
references that were never part of this repo):

* relative file targets must exist on disk (relative to the linking file);
* ``path#anchor`` targets must point at an existing file AND a heading in
  it whose GitHub-style slug matches the anchor;
* external links (http/https/mailto) are *not* fetched — CI must not
  depend on the network — but obviously malformed ones (no host) fail;
* backtick-quoted repo paths (````tests/test_sweep.py````,
  ````benchmarks/bench_sweep_scale.py```` …) must exist, resolved against
  the repo root, ``src/``, or ``src/repro/`` — so docs cannot reference
  files that were renamed or never landed.

Exit status 0 when every link resolves, 1 otherwise (each broken link is
reported as ``file:line: message``).

Usage::

    python tools/check_doc_links.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target).  Reference-style links and bare
#: URLs are out of scope — the repo's docs use inline links exclusively.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

#: Inline code spans, and the file-looking paths inside them: at least one
#: directory component plus a known extension (bare filenames like
#: ``manifest.json`` name run-time outputs, not repo files, and are skipped;
#: globs are skipped too).
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
CODE_PATH_RE = re.compile(r"(?<![\w./-])([\w.-]+(?:/[\w.-]+)+"
                          r"\.(?:py|md|json|yml|yaml|toml))(?![\w/-])")

#: Roots a backtick-quoted path may be relative to: repo root for
#: ``tests/...``/``benchmarks/...``, the source roots for module paths the
#: architecture docs quote as ``core/tcpu.py`` or ``repro/sweep/plan.py``.
PATH_ROOTS = ("", "src", "src/repro")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → hyphens."""
    text = re.sub(r"[`*_~\[\]()]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(md_file: Path, repo_root: Path) -> list[str]:
    errors: list[str] = []
    in_code_fence = False
    for lineno, line in enumerate(md_file.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for target in LINK_RE.findall(line):
            error = check_target(md_file, target)
            if error:
                errors.append(f"{md_file}:{lineno}: {error}")
        for candidate in code_path_candidates(line):
            if not any((repo_root / root / candidate).exists()
                       for root in PATH_ROOTS):
                errors.append(f"{md_file}:{lineno}: stale code reference "
                              f"`{candidate}`: not found under repo root, "
                              f"src/, or src/repro/")
    return errors


def code_path_candidates(line: str) -> list[str]:
    """File-looking paths quoted in the line's inline code spans."""
    candidates: list[str] = []
    for span in CODE_SPAN_RE.findall(line):
        if any(ch in span for ch in "*{<"):   # globs / templates, not paths
            continue
        candidates.extend(CODE_PATH_RE.findall(span))
    return candidates


def check_target(md_file: Path, target: str) -> str | None:
    if target.startswith(("http://", "https://")):
        if not re.match(r"https?://[\w.-]+", target):
            return f"malformed external link {target!r}"
        return None
    if target.startswith("mailto:"):
        return None
    path_part, _, anchor = target.partition("#")
    if not path_part:                     # intra-file anchor: #section
        resolved = md_file
    else:
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            return f"broken link {target!r}: {path_part} does not exist"
    if anchor:
        if resolved.suffix.lower() not in (".md", ".markdown"):
            return None                   # anchors into non-markdown: skip
        if anchor not in heading_slugs(resolved):
            return (f"broken anchor {target!r}: no heading in "
                    f"{resolved.name} slugs to #{anchor}")
    return None


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [repo_root / name
                 for name in ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md")]
        files += sorted((repo_root / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for path in missing:
            print(f"{path}: file not found", file=sys.stderr)
        return 1
    errors = [error
              for md_file in files
              for error in check_file(md_file, repo_root)]
    for error in errors:
        print(error, file=sys.stderr)
    checked = sum(len(LINK_RE.findall(f.read_text(encoding='utf-8'))) for f in files)
    if not errors:
        print(f"OK: {checked} links across {len(files)} files resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
