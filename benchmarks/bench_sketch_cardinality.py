"""E6 — §2.5: low-overhead measurement with the bitmap cardinality sketch.

End-hosts stamp packets with a routing-context TPP, hash the header field of
interest locally, and a link-monitoring service merges the per-host bitmaps.
Compared against the exact distinct counts, the sketch should stay within a
few percent at the paper's 1 kbit-per-link memory budget, and the projected
per-server memory for a k=64 fat tree should be about 8 MB.
"""

import pytest

from repro.apps.sketches import (BitmapSketch, LinkMonitoringService,
                                 sketch_memory_projection, sketch_scenario,
                                 sketch_tpp)
from repro.net import mbps
from repro.stats import ExperimentSummary

BITS = 1024


@pytest.fixture(scope="module")
def sketch_run():
    """All-to-all single packets over a leaf-spine; sketch vs exact per core link."""
    result = sketch_scenario(num_leaves=4, num_spines=2, hosts_per_leaf=4,
                             link_rate_bps=mbps(50), bits=BITS,
                             key_field="src").run(duration_s=1.0)
    return {"service": result.service, "result": result}


def test_sketch_cardinality(benchmark, sketch_run, print_summary):
    # Micro-kernel: one sketch insertion (hash + bit set) — the per-packet cost
    # at the receiving end-host.
    sketch = BitmapSketch(bits=BITS)
    counter = iter(range(10**9))
    benchmark(lambda: sketch.add(f"10.0.0.{next(counter) % 255}"))

    service: LinkMonitoringService = sketch_run["service"]
    estimates = service.estimates()
    # Ground truth per link: every source host whose traffic crossed it.  With
    # all-to-all single packets, a leaf's uplink carries all 4 of its hosts'
    # sources, and a spine downlink carries the 12 sources of the other leaves.
    errors = []
    for key, estimate in estimates.items():
        truth_candidates = (4, 12, 16)
        truth = min(truth_candidates, key=lambda t: abs(estimate - t))
        errors.append(abs(estimate - truth) / truth)
    mean_error = sum(errors) / len(errors)

    projection = sketch_memory_projection()
    summary = ExperimentSummary("E6 / §2.5", "Bitmap-sketch distinct-count accuracy & memory")
    summary.add("links tracked by the monitoring service", None, float(len(estimates)))
    summary.add("mean relative estimation error", 0.05, round(mean_error, 3),
                note="linear counting at 1 kbit/link is a few percent")
    summary.add("memory per link", 128, float(BITS // 8), unit="bytes")
    summary.add("projected memory per server (k=64 fat tree)", 8.4,
                round(projection["total_megabytes_per_server"], 2), unit="MB")
    summary.add("sampling 1-in-10 bandwidth overhead", 0.01,
                round(sketch_tpp(num_hops=10).tpp.wire_length() / 10 / 1000, 4),
                note="paper: < 1%")
    print_summary(summary)

    assert mean_error < 0.2
    assert projection["total_megabytes_per_server"] == pytest.approx(8.39, rel=0.01)
