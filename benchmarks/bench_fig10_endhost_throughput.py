"""E9 — Figure 10 / §6.2: end-host throughput versus TPP sampling frequency.

The paper's microbenchmark is CPU-specific, so the absolute Gb/s come from a
calibrated cost model; the *shape* is what matters: application goodput falls
roughly by the TPP-header fraction as the sampling frequency rises towards
every-packet, while on-wire network throughput stays nearly flat.  The
functional software-shim cost (filter match + TPP attach) is benchmarked
directly on this machine for context.
"""

import pytest

from repro.core.compiler import compile_tpp
from repro.endhost.filters import FilterEntry, FilterTable, PacketFilter
from repro.hardware import EndHostCostModel, FIGURE10_PAPER_GBPS
from repro.net.packet import udp_packet
from repro.stats import ExperimentSummary

SAMPLING_POINTS = (1, 10, 20, float("inf"))


def test_fig10_endhost_throughput(benchmark, print_summary):
    # Micro-kernel: the shim's per-packet transmit work — one filter-table
    # match plus cloning/attaching a 260-byte-class TPP.
    table = FilterTable()
    compiled = compile_tpp("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]",
                           num_hops=10)
    table.install(FilterEntry(filter=PacketFilter(protocol="udp"), app_id=1,
                              tpp_template=compiled))

    def shim_transmit_path():
        packet = udp_packet("h0", "h1", 1240)
        entry = table.match(packet)
        if entry is not None and entry.should_stamp(packet):
            packet.attach_tpp(entry.tpp_template.clone_tpp())
        return packet

    benchmark(shim_transmit_path)

    model = EndHostCostModel()
    summary = ExperimentSummary("E9 / Figure 10",
                                "End-host throughput vs TPP sampling frequency (Gb/s)")
    summary.add("baseline goodput, 1 flow, no TPPs",
                FIGURE10_PAPER_GBPS["goodput_1flow_no_tpp"],
                round(model.application_goodput_bps(1, float("inf")) / 1e9, 2), unit="Gb/s")
    summary.add("baseline goodput, 20 flows, no TPPs",
                FIGURE10_PAPER_GBPS["goodput_20flows_no_tpp"],
                round(model.application_goodput_bps(20, float("inf")) / 1e9, 2), unit="Gb/s")
    for flows in (1, 10, 20):
        for sampling in SAMPLING_POINTS:
            label = "inf" if sampling == float("inf") else str(sampling)
            summary.add(f"goodput, {flows:>2d} flows, sampling 1/{label}", None,
                        round(model.application_goodput_bps(flows, sampling) / 1e9, 2),
                        unit="Gb/s")
    summary.add("network throughput change @sampling=1 (20 flows)", 0.0,
                round(1 - model.network_throughput_bps(20, 1)
                      / model.network_throughput_bps(20, float("inf")), 3),
                note="paper: network throughput doesn't suffer much")
    print_summary(summary)

    # Shape assertions.
    for flows in (1, 10, 20):
        goodputs = [model.application_goodput_bps(flows, s) for s in SAMPLING_POINTS]
        assert goodputs == sorted(goodputs)          # more TPPs -> less goodput
        assert goodputs[0] / goodputs[-1] > 0.75     # but the drop is bounded (~header share)
    network_drop = 1 - (model.network_throughput_bps(20, 1)
                        / model.network_throughput_bps(20, float("inf")))
    assert network_drop < 0.1
