"""E2 — Figure 2: RCP* max-min versus proportional fairness (§2.2).

Three flows on a two-bottleneck chain: flow *a* crosses both links, *b* and
*c* one each.  Max-min RCP* should allocate each flow half a link;
proportional-fair RCP* should give *a* one third and *b*/*c* two thirds.
The run is scaled to 10 Mb/s links (fairness shares are rate-relative), so
the paper's 100 Mb/s allocations map to 5 / 5 / 5 and 3.3 / 6.7 / 6.7 Mb/s.
"""

import pytest

from repro.apps.rcp import (ALPHA_MAXMIN, ALPHA_PROPORTIONAL, RcpParameters, alpha_fair_rate,
                            expected_fair_shares, rcp_update, run_rcp_fairness_experiment)
from repro.net import mbps
from repro.stats import ExperimentSummary

LINK_RATE = mbps(10)


@pytest.fixture(scope="module")
def maxmin():
    return run_rcp_fairness_experiment(alpha=ALPHA_MAXMIN, duration_s=10.0,
                                       link_rate_bps=LINK_RATE)


@pytest.fixture(scope="module")
def proportional():
    return run_rcp_fairness_experiment(alpha=ALPHA_PROPORTIONAL, duration_s=10.0,
                                       link_rate_bps=LINK_RATE)


def test_fig2_rcp_fairness(benchmark, maxmin, proportional, print_summary):
    # Micro-kernel: one full control-loop computation (RCP update + α-fair
    # aggregation across 3 hops), the per-period work each flow's controller does.
    params = RcpParameters()

    def control_round():
        rates = [rcp_update(5e6, 9e6, 4000, LINK_RATE, params) for _ in range(3)]
        return alpha_fair_rate(rates, ALPHA_MAXMIN)

    benchmark(control_round)

    summary = ExperimentSummary("E2 / Figure 2", "RCP* fairness allocations (Mb/s)")
    for alpha, label, result in ((ALPHA_MAXMIN, "max-min", maxmin),
                                 (ALPHA_PROPORTIONAL, "proportional", proportional)):
        expected = expected_fair_shares(alpha, LINK_RATE)
        for flow in ("a", "b", "c"):
            summary.add(f"{label:12s} flow {flow}", round(expected[flow] / 1e6, 2),
                        round(result.mean_throughput_bps[flow] / 1e6, 2), unit="Mb/s")
    print_summary(summary)

    maxmin_expected = expected_fair_shares(ALPHA_MAXMIN, LINK_RATE)
    for flow in ("a", "b", "c"):
        assert maxmin.mean_throughput_bps[flow] == \
            pytest.approx(maxmin_expected[flow], rel=0.3)
    assert (proportional.mean_throughput_bps["b"]
            > 1.5 * proportional.mean_throughput_bps["a"])
