"""Macro-benchmark: what does the dataplane flight recorder cost?

Runs the event-throughput workload (3-tier fat-tree, per-host cross-pod
bursts, two-instruction TPP — see :mod:`bench_event_throughput`) three
times over the identical simulated interval:

* **off** — no recorder attached: the hooks are ``None``-guarded
  attribute checks, i.e. the baseline every other benchmark measures;
* **sampled** — ``RecorderSpec(sample_every=8)``: 1-in-8 flows recorded,
  the always-on production posture;
* **full** — ``RecorderSpec(sample_every=1)``: every packet's complete
  journey, the forensic posture.

Because the recorder is pure observation, all three runs must execute the
*byte-identical* event sequence — the benchmark asserts equal event, TPP
hop, and forwarded-packet totals before comparing wall-clock rates
(overhead measured against a simulation that changed would be
meaningless).  The headline gate: **sampled-mode overhead <= 10%** of the
recorder-off events/sec, enforced on the best-of-``--repeat`` rates so a
noisy scheduler tick doesn't fail a healthy build.

Usage::

    PYTHONPATH=src python benchmarks/bench_flightrec_overhead.py [--quick]
    PYTHONPATH=src python benchmarks/bench_flightrec_overhead.py \
        --duration 0.02 --repeat 5
"""

from __future__ import annotations

import argparse

import _provenance
import bench_event_throughput as baseline
from repro.obs import RecorderSpec

#: The acceptance gate: sampled-mode slowdown vs recorder-off.
MAX_SAMPLED_OVERHEAD = 0.10

#: Ring capacity per node — large enough that overwrite churn is realistic,
#: small enough that memory stays bounded on the full posture.
CAPACITY = 4096

MODES = (
    ("off", None),
    ("sampled", RecorderSpec(capacity=CAPACITY, sample_every=8)),
    ("full", RecorderSpec(capacity=CAPACITY, sample_every=1)),
)


def run_modes(duration_s: float, repeat: int) -> dict[str, dict]:
    """Best-of-``repeat`` measurement per recorder mode.

    Rounds are interleaved (off, sampled, full, off, sampled, full, ...)
    rather than measured per mode, so transient machine noise lands on
    every mode instead of skewing one — on a loaded single-core box a
    sequential sweep can easily fake a 10% "overhead" out of thin air.
    """
    results: dict[str, dict] = {}
    for _ in range(max(1, repeat)):
        for name, spec in MODES:
            run = baseline.run_once(duration_s, recorder=spec)
            best = results.get(name)
            if best is None or run["events_per_s"] > best["events_per_s"]:
                results[name] = run
    return results


def overhead(off: dict, mode: dict) -> float:
    """Fractional events/sec slowdown of ``mode`` relative to ``off``."""
    return 1.0 - mode["events_per_s"] / off["events_per_s"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=10e-3,
                        help="simulated seconds per mode (default 10ms)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 2ms of simulated time")
    parser.add_argument("--repeat", type=int, default=5,
                        help="interleaved rounds per mode; best events/sec "
                             "wins (default 5)")
    parser.add_argument("--output", default="BENCH_flightrec_overhead.json",
                        help="artifact path "
                             "(default: BENCH_flightrec_overhead.json)")
    args = parser.parse_args()
    duration = 2e-3 if args.quick else args.duration

    results = run_modes(duration, args.repeat)
    off = results["off"]

    # Pure observation: the recorder must not perturb the simulation.
    for name in ("sampled", "full"):
        for field in ("events", "tpp_hops", "instructions",
                      "packets_forwarded"):
            assert results[name][field] == off[field], \
                f"{name} recorder perturbed {field}: " \
                f"{results[name][field]:,} vs {off[field]:,}"

    overheads = {name: overhead(off, results[name])
                 for name in ("sampled", "full")}

    print(f"flight-recorder overhead, {duration * 1e3:g} ms simulated, "
          f"best of {args.repeat} (fat-tree k=4, {off['events']:,} events "
          f"per run, identical across modes)")
    for name, _ in MODES:
        result = results[name]
        extra = "" if name == "off" else \
            f"  overhead {overheads[name] * 100:+6.2f}%"
        print(f"  {name:<8s} {result['events_per_s']:>12,.0f} events/s"
              f"{extra}")

    gate_ok = overheads["sampled"] <= MAX_SAMPLED_OVERHEAD
    print(f"  gate: sampled overhead {overheads['sampled'] * 100:.2f}% "
          f"<= {MAX_SAMPLED_OVERHEAD * 100:.0f}% -> "
          f"{'OK' if gate_ok else 'FAIL'}")

    artifact = {
        "benchmark": "bench_flightrec_overhead",
        "workload": {
            "topology": "fat-tree k=4 (20 switches, 16 hosts)",
            "tpp": baseline.TPP_SOURCE.replace("\n", "; "),
            "duration_s": duration,
            "repeat": args.repeat,
            "capacity": CAPACITY,
            "sampled_every": 8,
        },
        "modes": results,
        "overhead": {name: round(value, 4)
                     for name, value in overheads.items()},
        "identical_totals": True,
        "gate": {
            "max_sampled_overhead": MAX_SAMPLED_OVERHEAD,
            "measured": round(overheads["sampled"], 4),
            "passed": gate_ok,
        },
    }
    _provenance.write_artifact(artifact, args.output)
    print(f"  artifact written    : {args.output}")

    assert gate_ok, \
        f"sampled-mode overhead {overheads['sampled'] * 100:.2f}% exceeds " \
        f"the {MAX_SAMPLED_OVERHEAD * 100:.0f}% budget"


if __name__ == "__main__":
    main()
