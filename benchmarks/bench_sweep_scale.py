"""Macro-benchmark: sweep-orchestrator scaling (workers vs experiments/sec).

The sweep plane fans serializable scenario specs across a process pool and
folds the per-experiment :class:`~repro.session.ResultSummary` monoids back
into one canonical artifact.  This benchmark locks both halves of that
design in:

* **Invariance** — the same 16-point sweep (dumbbell micro-burst monitor,
  offered-load axis x seed replication) runs serially and at 2/4/8 workers.
  Every run must render the byte-identical canonical sweep artifact; a
  divergence is a hard assertion failure, not a number.
* **Scaling** — experiments/sec at each worker count, with the speedup over
  the serial run.  The ``>= 2.5x at 4 workers`` assertion is enforced only
  when the machine actually has >= 4 usable CPUs (a single-core container
  cannot speed up CPU-bound simulation no matter how correct the
  orchestrator is); the artifact records ``available_cpus`` and whether the
  assertion was enforced, so the committed numbers are honest.

The results are recorded in a JSON artifact (``BENCH_sweep_scale.json`` by
default) so the repo carries the measured run next to the code.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_scale.py [--quick]
    PYTHONPATH=src python benchmarks/bench_sweep_scale.py --workers 1 2 4 8
"""

from __future__ import annotations

import argparse
import hashlib
import os

import _provenance
from repro.apps.microburst import MICROBURST_TPP_SOURCE, MicroburstAggregator
from repro.endhost import PacketFilter
from repro.net import mbps
from repro.session import Scenario
from repro.sweep import SweepRunner, SweepSpec

DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
SPEEDUP_FLOOR = 2.5          # required experiments/sec ratio at 4 workers
SPEEDUP_AT_WORKERS = 4
MIN_CPUS_TO_ENFORCE = 4


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                      # non-Linux fallback
        return os.cpu_count() or 1


def base_scenario(seed: int = 7) -> Scenario:
    return (Scenario("dumbbell", seed=seed, name="sweep-scale",
                     hosts_per_side=3, link_rate_bps=mbps(50))
            .tpp("monitor", MICROBURST_TPP_SOURCE, num_hops=6,
                 filter=PacketFilter(protocol="udp"),
                 aggregator=MicroburstAggregator)
            .workload("messages", offered_load=0.3, message_bytes=4000))


def build_sweep(loads, seeds: int) -> SweepSpec:
    return (SweepSpec(base_scenario())
            .axis("workload.messages.offered_load", loads)
            .replicate(seeds))


def scaling_sweep(worker_counts, loads, seeds: int, duration_s: float) -> dict:
    """Run the identical sweep at every worker count; assert byte-identity."""
    sweep = build_sweep(loads, seeds)
    tasks = sweep.expand()
    print(f"sweep: {len(tasks)} specs ({len(loads)} loads x {seeds} seeds), "
          f"{duration_s:g} s simulated each, worker counts {list(worker_counts)}")

    rows = []
    reference_json = None
    serial_eps = None
    for workers in worker_counts:
        runner = SweepRunner(workers=workers, duration_s=duration_s)
        result = runner.run(tasks)
        assert len(result.completed) == len(tasks), \
            f"{len(tasks) - len(result.completed)} tasks did not complete " \
            f"at {workers} worker(s)"
        artifact_json = result.canonical_json()
        digest = hashlib.blake2b(artifact_json.encode(),
                                 digest_size=16).hexdigest()
        if reference_json is None:
            reference_json = artifact_json
        assert artifact_json == reference_json, \
            f"canonical sweep artifact diverged at {workers} worker(s)"
        eps = result.experiments_per_second()
        if serial_eps is None:
            serial_eps = eps
        speedup = eps / serial_eps if serial_eps else 0.0
        rows.append({
            "workers": workers,
            "wall_s": result.wall_s,
            "experiments_per_second": eps,
            "speedup_vs_serial": speedup,
            "retries": result.retries,
            "worker_crashes": result.worker_crashes,
            "pool_restarts": result.pool_restarts,
            "artifact_digest": digest,
        })
        print(f"  {workers} worker(s): {result.wall_s:.2f} s wall, "
              f"{eps:.2f} experiments/s ({speedup:.2f}x serial) — "
              f"artifact identical ({digest[:12]})")
    return {
        "specs": len(tasks),
        "duration_s": duration_s,
        "artifact_identical": True,
        "artifact_digest": rows[0]["artifact_digest"],
        "runs": rows,
    }


def check_speedup(scaling: dict, cpus: int, quick: bool) -> dict:
    """The >= 2.5x-at-4-workers gate, enforced only where it is physical."""
    row = next((r for r in scaling["runs"]
                if r["workers"] == SPEEDUP_AT_WORKERS), None)
    measured = row["speedup_vs_serial"] if row else None
    enforced = (not quick and row is not None and cpus >= MIN_CPUS_TO_ENFORCE)
    verdict = {
        "required": SPEEDUP_FLOOR,
        "at_workers": SPEEDUP_AT_WORKERS,
        "measured": measured,
        "available_cpus": cpus,
        "enforced": enforced,
        "reason": None if enforced else
        ("quick mode" if quick else
         f"only {cpus} usable CPU(s); parallel speedup of CPU-bound "
         f"simulation is not physical below {MIN_CPUS_TO_ENFORCE}"),
    }
    if enforced:
        assert measured >= SPEEDUP_FLOOR, \
            f"speedup at {SPEEDUP_AT_WORKERS} workers is {measured:.2f}x, " \
            f"required >= {SPEEDUP_FLOOR}x"
        print(f"speedup gate: {measured:.2f}x >= {SPEEDUP_FLOOR}x at "
              f"{SPEEDUP_AT_WORKERS} workers — pass")
    else:
        print(f"speedup gate: not enforced ({verdict['reason']}); "
              f"measured {measured if measured is not None else 'n/a'}")
    return verdict


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer specs, workers 1 and 2")
    parser.add_argument("--workers", type=int, nargs="+",
                        default=list(DEFAULT_WORKER_COUNTS),
                        help="worker counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--duration", type=float, default=0.4,
                        help="simulated seconds per experiment")
    parser.add_argument("--seeds", type=int, default=4,
                        help="seed replicates per load point")
    parser.add_argument("--output", default="BENCH_sweep_scale.json",
                        help="artifact path (default: BENCH_sweep_scale.json)")
    args = parser.parse_args()

    if args.quick:
        worker_counts = [1, 2]
        loads, seeds, duration = (0.2, 0.4), 2, 0.15
    else:
        worker_counts = args.workers
        loads, seeds, duration = (0.2, 0.3, 0.4, 0.5), args.seeds, args.duration

    cpus = available_cpus()
    scaling = scaling_sweep(worker_counts, loads, seeds, duration)
    speedup = check_speedup(scaling, cpus, args.quick)

    artifact = {
        "benchmark": "bench_sweep_scale",
        "quick": args.quick,
        "config": {
            "quick": args.quick,
            "worker_counts": list(worker_counts),
            "loads": list(loads),
            "seeds": seeds,
            "duration_s": duration,
        },
        "available_cpus": cpus,
        "worker_counts": list(worker_counts),
        "scaling": scaling,
        "speedup_assertion": speedup,
    }
    _provenance.write_artifact(artifact, args.output)
    print(f"artifact written: {args.output}")


if __name__ == "__main__":
    main()
