"""E5 — Figure 4: CONGA*-style load balancing versus ECMP (§2.4).

Two leaves send to a third over a two-spine fabric: L0→L2 demands 50 % of a
link and has one path; L1→L2 demands 120 % and has two.  ECMP splits L1's
flows evenly and saturates the path shared with L0; CONGA* probes both paths
with TPPs and shifts flowlets until both demands are met at lower maximum
utilisation (the paper's 100 % vs 85 %).  Demands are expressed as fractions
of the (scaled-down) fabric link rate.
"""

import pytest

from repro.apps.conga import run_conga_experiment
from repro.baselines.ecmp import expected_figure4_conga, expected_figure4_ecmp
from repro.core.compiler import compile_tpp
from repro.apps.conga import PROBE_TPP_SOURCE
from repro.net import mbps
from repro.stats import ExperimentSummary

LINK_RATE = mbps(10)


@pytest.fixture(scope="module")
def ecmp():
    return run_conga_experiment("ecmp", duration_s=8.0, link_rate_bps=LINK_RATE)


@pytest.fixture(scope="module")
def conga():
    return run_conga_experiment("conga", duration_s=8.0, link_rate_bps=LINK_RATE)


def test_fig4_conga_vs_ecmp(benchmark, ecmp, conga, print_summary):
    # Micro-kernel: compiling and cloning the path-probe TPP (per probing round).
    compiled = compile_tpp(PROBE_TPP_SOURCE, num_hops=8)
    benchmark(lambda: compiled.clone_tpp())

    paper_ecmp = expected_figure4_ecmp(LINK_RATE, 0.5 * LINK_RATE, 1.2 * LINK_RATE)
    paper_conga = expected_figure4_conga(LINK_RATE, 0.5 * LINK_RATE, 1.2 * LINK_RATE)

    summary = ExperimentSummary("E5 / Figure 4", "Load balancing: achieved throughput (Mb/s)")
    summary.add("ECMP   L0:L2 (demand 5)", round(paper_ecmp["L0:L2"] / 1e6, 2),
                round(ecmp.achieved_bps["L0:L2"] / 1e6, 2), unit="Mb/s")
    summary.add("ECMP   L1:L2 (demand 12)", round(paper_ecmp["L1:L2"] / 1e6, 2),
                round(ecmp.achieved_bps["L1:L2"] / 1e6, 2), unit="Mb/s")
    summary.add("ECMP   max fabric utilisation", paper_ecmp["max_utilization"],
                round(ecmp.max_core_utilization, 2))
    summary.add("CONGA* L0:L2 (demand 5)", round(paper_conga["L0:L2"] / 1e6, 2),
                round(conga.achieved_bps["L0:L2"] / 1e6, 2), unit="Mb/s")
    summary.add("CONGA* L1:L2 (demand 12)", round(paper_conga["L1:L2"] / 1e6, 2),
                round(conga.achieved_bps["L1:L2"] / 1e6, 2), unit="Mb/s")
    summary.add("CONGA* max fabric utilisation", paper_conga["max_utilization"],
                round(conga.max_core_utilization, 2))
    print_summary(summary)

    # Shape checks: who wins and roughly by how much.
    assert ecmp.achieved_bps["L1:L2"] < 0.99 * ecmp.demand_bps["L1:L2"]
    assert conga.achieved_fraction("L1:L2") > 0.95
    assert conga.achieved_fraction("L0:L2") > 0.9
    assert conga.max_core_utilization <= ecmp.max_core_utilization
    assert ecmp.max_core_utilization > 0.97
