"""E1 — Figure 1: micro-burst detection via per-packet queue occupancy (§2.1).

Regenerates the Figure 1b data: per-queue occupancy samples collected from
every packet of an all-to-all 10 kB-message workload at 30 % load on a
six-host dumbbell.  The paper's qualitative claims checked here:

* one of the observed queues is empty for a large fraction (~80 %) of packet
  arrivals, yet spikes to ~20 packets — the micro-burst a sampling monitor
  would miss;
* the per-packet TPP adds 54 bytes for a 5-hop datacenter (12 B header,
  12 B instructions, 6 B per hop).
"""

import pytest

from repro.apps.microburst import microburst_tpp, run_microburst_experiment
from repro.core.tcpu import PacketContext, TCPU
from repro.net import mbps
from repro.stats import ExperimentSummary


@pytest.fixture(scope="module")
def experiment():
    return run_microburst_experiment(duration_s=1.5, link_rate_bps=mbps(10),
                                     offered_load=0.3, message_bytes=10_000, seed=1)


def test_fig1_microburst(benchmark, experiment, print_summary):
    # Micro-kernel: executing the 3-instruction micro-burst TPP on a dict-backed
    # memory — the per-hop work a switch does for every instrumented packet.
    compiled = microburst_tpp(num_hops=6)

    class _Memory:
        def read(self, address, context):
            return 7

        def write(self, address, value, context):
            return True

    tcpu, memory, context = TCPU(), _Memory(), PacketContext()

    def run_once():
        tpp = compiled.clone_tpp()
        tcpu.execute(tpp, memory, context)
        return tpp

    benchmark(run_once)

    busiest = max(experiment.observed_queues, key=experiment.max_occupancy)
    summary = ExperimentSummary("E1 / Figure 1b", "Micro-burst detection on a dumbbell")
    summary.add("per-packet TPP overhead (5 hops)", 54,
                microburst_tpp(num_hops=5).tpp.wire_length(), unit="bytes")
    summary.add("queue samples collected", None, float(len(experiment.samples)),
                note="one sample per hop per instrumented packet")
    summary.add("distinct queues observed", 6.0, float(len(experiment.observed_queues)),
                note="paper plots 6 queues")
    summary.add("peak occupancy on busiest queue", 25.0,
                float(experiment.max_occupancy(busiest)), unit="pkts",
                note="paper's bursts reach ~20-25 packets")
    summary.add("fraction of arrivals finding an empty queue", 0.8,
                round(max(experiment.fraction_empty(q)
                          for q in experiment.observed_queues), 3),
                note="paper: one queue empty at ~80% of arrivals")
    print_summary(summary)

    assert experiment.max_occupancy(busiest) >= 3
    assert len(experiment.observed_queues) >= 4
