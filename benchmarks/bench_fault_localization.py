"""Macro-benchmark: fault-plane invariance and TPP loss localization.

The fault plane (:mod:`repro.faults`) makes two load-bearing promises,
and this benchmark locks both in as hard assertions:

* **Invariance** — declaring an *empty* :class:`~repro.faults.FaultPlan`
  is free.  Every app scenario in the repo (micro-burst, NetSight, the
  sketch suite, RCP, CONGA, net-verify) runs untouched and again with an
  empty plan declared; each pair must land on the identical simulator
  event total and the identical canonical :class:`ResultSummary` JSON.
  The fault plane draws no randomness and schedules no events until a
  plan has entries, so turning it on cannot shift a single baseline.
* **Localization + remediation** — a seeded gray failure (one
  edge-to-aggregation link on the k=4 fat tree silently corrupting a
  fraction of its packets) must be *named* by the loss-localization TPP's
  per-hop counter diffs, and the ``disable-and-repair`` policy must land
  a measurably lower fault-attributable loss penalty than the
  ``do-nothing`` baseline it is benchmarked against.

The results are recorded in a JSON artifact
(``BENCH_fault_localization.json`` by default) so the repo carries the
measured run next to the code.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_localization.py [--quick]
    PYTHONPATH=src python benchmarks/bench_fault_localization.py --loss-rate 0.2
"""

from __future__ import annotations

import argparse
import json
import re
import time

import _provenance
from repro.faults import FaultEvent, FaultPlan, RemediationSpec
from repro.net import mbps
from repro.session import ResultSummary

#: The injected gray failure: an edge-to-aggregation link every pod-0
#: host's traffic crosses, corrupting silently while staying "up".
LOSSY_LINK = "edge0_0<->agg0_0"


# --------------------------------------------------------------- invariance
def app_scenarios(quick: bool):
    """(name, scenario factory, duration) for every app in the repo.

    Durations mirror the collect-plane differential tests; quick mode
    halves them (byte-identity holds at any length).
    """
    from repro.apps.conga import conga_scenario
    from repro.apps.microburst import microburst_scenario
    from repro.apps.netsight import netsight_scenario
    from repro.apps.netverify import verification_scenario
    from repro.apps.rcp import ALPHA_MAXMIN, rcp_scenario
    from repro.apps.sketches import sketch_scenario

    scale = 0.5 if quick else 1.0
    rows = [
        ("microburst",
         lambda: microburst_scenario(link_rate_bps=mbps(10),
                                     offered_load=0.4, seed=3),
         0.25 * scale),
        ("netsight",
         lambda: netsight_scenario(link_rate_bps=mbps(10), seed=2),
         0.2 * scale),
        ("sketches",
         lambda: sketch_scenario(num_leaves=2, num_spines=1,
                                 hosts_per_leaf=2, seed=2),
         0.4 * scale),
        ("rcp",
         lambda: rcp_scenario(alpha=ALPHA_MAXMIN, link_rate_bps=mbps(10)),
         1.0 * scale),
        ("conga",
         lambda: conga_scenario("conga", link_rate_bps=mbps(10)),
         1.0 * scale),
        ("netverify", verification_scenario, 0.35 * scale),
    ]
    return rows


def run_raw(scenario, duration_s: float) -> ResultSummary:
    """The unmapped result's canonical summary (mappers vary per app)."""
    result = scenario.build(duration_s).run(duration_s)
    return ResultSummary.from_result(result)


def canonical_view(summary: ResultSummary) -> str:
    """The summary as sorted JSON, with object addresses masked.

    Some app summaries (the sketch suite) fall back to ``repr`` for
    non-mergeable parts, which embeds a memory address that shifts
    between *any* two runs in one process; everything else must match
    byte for byte.
    """
    view = json.dumps(summary.as_jsonable(), sort_keys=True)
    return re.sub(r"0x[0-9a-f]+", "0x-", view)


def invariance_leg(quick: bool) -> dict:
    """Every app, with and without an empty plan; assert byte-identity."""
    rows = []
    for name, factory, duration in app_scenarios(quick):
        start = time.perf_counter()
        baseline = run_raw(factory(), duration)
        degraded = run_raw(factory().faults(FaultPlan()), duration)
        wall = time.perf_counter() - start
        events = baseline.counters["events_executed"]
        assert degraded.counters["events_executed"] == events, \
            f"{name}: event totals diverged under an empty plan " \
            f"({degraded.counters['events_executed']:,} vs {events:,})"
        assert canonical_view(degraded) == canonical_view(baseline), \
            f"{name}: result summary diverged under an empty plan"
        assert degraded.counters["fault_events_applied"] == 0
        rows.append({"app": name, "duration_s": duration, "events": events,
                     "wall_s": wall, "identical": True})
        print(f"  {name}: {events:,} events — empty plan byte-identical "
              f"({wall:.1f}s wall)")
    return {"apps": rows, "identical": True}


# ------------------------------------------------------------- localization
def localization_leg(duration_s: float, loss_rate: float, seed: int) -> dict:
    """Inject one corrupting link; localize it; compare the two policies."""
    from repro.apps.losslocal import localize, losslocal_scenario

    plan = FaultPlan(events=(FaultEvent(0.0, LOSSY_LINK, "loss", loss_rate),),
                     seed=seed)

    def run_policy(policy: str | None) -> dict:
        scenario = losslocal_scenario(k=4, link_rate_bps=mbps(100),
                                      offered_load=0.2, seed=seed,
                                      faults=plan)
        if policy is not None:
            scenario.remediation(RemediationSpec(policy=policy))
        experiment = scenario.build(duration_s)
        result = experiment.run(duration_s)
        suspects = localize(result)
        controller = experiment.remediation
        return {
            "policy": policy or "none",
            "events": result.events_executed,
            "packets_corrupted": result.packets_corrupted,
            "drop_reasons": dict(result.drop_reasons),
            "accused_link": suspects[0].link if suspects else None,
            "top_deficit": suspects[0].deficit if suspects else 0,
            "loss_penalty": controller.loss_penalty() if controller else None,
            "links_disabled": controller.links_disabled if controller else 0,
            "reroutes": controller.reroutes if controller else 0,
        }

    nothing = run_policy("do-nothing")
    acting = run_policy("disable-and-repair")

    for row in (nothing, acting):
        assert row["accused_link"] == LOSSY_LINK, \
            f"{row['policy']}: localization accused {row['accused_link']!r}, " \
            f"injected {LOSSY_LINK!r}"
        print(f"  {row['policy']}: accused {row['accused_link']} "
              f"(deficit {row['top_deficit']}), "
              f"penalty {row['loss_penalty']}, "
              f"{row['packets_corrupted']} corrupted")
    assert acting["links_disabled"] == 1
    assert acting["loss_penalty"] < nothing["loss_penalty"], \
        f"disable-and-repair did not cut the penalty " \
        f"({acting['loss_penalty']} vs {nothing['loss_penalty']})"
    reduction = 1 - acting["loss_penalty"] / nothing["loss_penalty"]
    print(f"  disable-and-repair cut the loss penalty by {reduction:.0%}")
    return {
        "injected_link": LOSSY_LINK,
        "loss_rate": loss_rate,
        "duration_s": duration_s,
        "seed": seed,
        "runs": [nothing, acting],
        "penalty_reduction": reduction,
        "localized": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shorter runs, same assertions")
    parser.add_argument("--duration", type=float, default=0.6,
                        help="simulated seconds for the localization runs")
    parser.add_argument("--loss-rate", type=float, default=0.1,
                        help="corruption probability on the injected link")
    parser.add_argument("--seed", type=int, default=7,
                        help="plan seed (workload seed rides along)")
    parser.add_argument("--output", default="BENCH_fault_localization.json",
                        help="artifact path "
                             "(default: BENCH_fault_localization.json)")
    args = parser.parse_args()

    duration = 0.3 if args.quick else args.duration

    print("invariance: every app scenario, untouched vs empty FaultPlan")
    invariance = invariance_leg(args.quick)
    print(f"localization: k=4 fat tree, {LOSSY_LINK} corrupting at "
          f"{args.loss_rate:g}, {duration:g}s simulated")
    localization = localization_leg(duration, args.loss_rate, args.seed)

    artifact = {
        "benchmark": "bench_fault_localization",
        "quick": args.quick,
        "config": {
            "quick": args.quick,
            "duration_s": duration,
            "loss_rate": args.loss_rate,
            "seed": args.seed,
            "lossy_link": LOSSY_LINK,
        },
        "invariance": invariance,
        "localization": localization,
    }
    _provenance.write_artifact(artifact, args.output)
    print(f"artifact written: {args.output}")


if __name__ == "__main__":
    main()
