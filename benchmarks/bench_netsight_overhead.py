"""E4 — §2.3 "Overheads": packet-history (NetSight/ndb) bandwidth overhead.

The packet-history TPP is 12 bytes of instructions plus 6 bytes per hop; with
the 12-byte TPP header and space for 10 hops that is 84 bytes per packet —
an 8.4 % bandwidth overhead on 1000-byte packets when every packet is
instrumented, proportionally less under sampling.  The benchmark also runs a
small end-to-end deployment to confirm the measured on-wire inflation matches
the arithmetic.
"""

import pytest

from repro.apps.netsight import (NetSightAggregator, PACKET_HISTORY_TPP_SOURCE,
                                 history_bandwidth_overhead, history_from_tpp,
                                 history_overhead_bytes, packet_history_tpp)
from repro.net import mbps, udp_packet
from repro.session import Scenario
from repro.stats import ExperimentSummary


@pytest.fixture(scope="module")
def deployment_measurement():
    """Send 200 one-thousand-byte packets with packet-history TPPs attached."""
    def inject(experiment):
        sender = experiment.host("h0")
        baseline_bytes = 0
        for i in range(200):
            packet = udp_packet("h0", "h5", 958, dport=4000 + (i % 8))  # 1000 B on wire
            baseline_bytes += packet.size
            sender.send(packet)
        experiment.extras["baseline_bytes"] = baseline_bytes

    result = (Scenario("dumbbell", link_rate_bps=mbps(10))
              .tpp("netsight", PACKET_HISTORY_TPP_SOURCE, num_hops=10,
                   aggregator=NetSightAggregator)
              .setup(inject)
              .run(duration_s=2.0))
    baseline_bytes = result.extras["baseline_bytes"]
    wire_bytes = result.network.hosts["h0"].bytes_sent
    histories = sum(len(agg.store) for agg in result.aggregators("netsight").values())
    return {"overhead_fraction": (wire_bytes - baseline_bytes) / baseline_bytes,
            "histories": histories}


def test_netsight_overhead(benchmark, deployment_measurement, print_summary):
    # Micro-kernel: reconstructing a packet history from a completed TPP — the
    # per-packet work of the NetSight aggregator.
    compiled = packet_history_tpp(num_hops=10)
    template = compiled.clone_tpp()
    for hop in range(5):
        for value in (hop + 1, 17, 2):
            template.push(value)
        template.advance_hop()
    packet = udp_packet("h0", "h5", 958)
    packet.delivered_at = 1.0
    benchmark(lambda: history_from_tpp(template, packet))

    summary = ExperimentSummary("E4 / §2.3 overheads", "Packet-history collection overhead")
    summary.add("TPP size (10-hop packet memory)", 84, history_overhead_bytes(10), unit="bytes")
    summary.add("bandwidth overhead @1000B packets, every packet", 0.084,
                round(history_bandwidth_overhead(1000, 10), 4))
    summary.add("bandwidth overhead @1000B packets, 1-in-10 sampling", 0.0084,
                round(history_bandwidth_overhead(1000, 10, 10), 4))
    summary.add("measured on-wire inflation (dumbbell deployment)", 0.084,
                round(deployment_measurement["overhead_fraction"], 4))
    summary.add("histories reconstructed", 200, float(deployment_measurement["histories"]))
    print_summary(summary)

    assert history_overhead_bytes(10) == 84
    assert deployment_measurement["overhead_fraction"] == pytest.approx(0.084, rel=0.05)
    assert deployment_measurement["histories"] == 200
