"""E8 — Table 4 / §6.1: die-area cost of TPP support.

NetFPGA synthesis numbers (slices, registers, LUTs, LUT-FF pairs) are
reproduced as calibration constants and re-expressed as the percentage
increases the paper reports; the ASIC figure is the Bosshart-et-al. scaling
argument: 320 TCPU execution units ≈ 0.32 % of die area.
"""

import pytest

from repro.hardware import (NETFPGA_TABLE4, NETFPGA_TABLE4_PAPER_PERCENT,
                            asic_tcpu_area_percent, build_area_report)
from repro.stats import ExperimentSummary


def test_table4_area_costs(benchmark, print_summary):
    benchmark(build_area_report)

    report = build_area_report()
    summary = ExperimentSummary("E8 / Table 4", "Hardware area cost of the TCPU")
    for row in NETFPGA_TABLE4:
        paper = NETFPGA_TABLE4_PAPER_PERCENT[row.name]
        summary.add(f"NetFPGA {row.name} extra", paper,
                    round(report.netfpga_percent_extra[row.name], 1), unit="%")
    summary.add("ASIC TCPU execution units", 320, float(report.asic_tcpu_units))
    summary.add("ASIC area for TPP support", 0.32, round(report.asic_area_percent, 3),
                unit="%")
    print_summary(summary)

    for name, paper in NETFPGA_TABLE4_PAPER_PERCENT.items():
        assert report.netfpga_percent_extra[name] == pytest.approx(paper, abs=0.1)
    assert report.asic_area_percent == pytest.approx(0.32)
    assert asic_tcpu_area_percent(instructions_per_packet=5, stages=64) < 7.0
