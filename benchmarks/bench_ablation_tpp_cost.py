"""Ablation — the simulator-level cost of TPP support.

Not a paper table, but a design-choice check DESIGN.md calls out: what does
executing TPPs cost the functional switch model, and how does the per-packet
cost scale with the instruction count?  This guards the substrate itself (the
reproduction's switch must not be accidentally quadratic in instructions or
hops) and quantifies the simulation overhead of instrumenting every packet.
"""

import pytest

from repro.core.compiler import compile_tpp
from repro.net import Simulator, build_dumbbell, mbps, udp_packet
from repro.stats import ExperimentSummary


def _run_forwarding(instrumented: bool, packets: int = 300) -> float:
    """Forward ``packets`` across the dumbbell; return events per packet."""
    sim = Simulator()
    topo = build_dumbbell(sim, link_rate_bps=mbps(100))
    network = topo.network
    compiled = compile_tpp(
        "PUSH [Switch:SwitchID]\nPUSH [PacketMetadata:OutputPort]\n"
        "PUSH [Queue:QueueOccupancy]", num_hops=6)
    for i in range(packets):
        packet = udp_packet("h0", "h5", 1000, dport=5000 + (i % 16))
        if instrumented:
            packet.attach_tpp(compiled.clone_tpp())
        network.hosts["h0"].send(packet)
    sim.run(until=5.0)
    network.stop_switch_processes()
    delivered = network.hosts["h5"].packets_received
    assert delivered == packets
    return sim.events_executed / packets


@pytest.fixture(scope="module")
def event_counts():
    return {"plain": _run_forwarding(False), "instrumented": _run_forwarding(True)}


def test_ablation_tpp_execution_cost(benchmark, event_counts, print_summary):
    # Micro-kernel: per-instruction scaling — execute 1- vs 5-instruction TPPs.
    one = compile_tpp("PUSH [Switch:SwitchID]", num_hops=6)
    five = compile_tpp("\n".join(["PUSH [Switch:SwitchID]"] * 5), num_hops=6)

    class _Memory:
        def read(self, address, context):
            return 1

        def write(self, address, value, context):
            return True

    from repro.core.tcpu import PacketContext, TCPU
    tcpu, memory, context = TCPU(), _Memory(), PacketContext()

    def five_instruction_hop():
        tcpu.execute(five.clone_tpp(), memory, context)

    benchmark(five_instruction_hop)

    import timeit
    t_one = timeit.timeit(lambda: tcpu.execute(one.clone_tpp(), memory, context), number=2000)
    t_five = timeit.timeit(lambda: tcpu.execute(five.clone_tpp(), memory, context), number=2000)

    summary = ExperimentSummary("Ablation", "Cost of TPP support in the functional model")
    summary.add("simulator events per plain packet", None, round(event_counts["plain"], 2))
    summary.add("simulator events per instrumented packet", None,
                round(event_counts["instrumented"], 2),
                note="TPP execution adds no events, only per-hop work")
    summary.add("5-instruction / 1-instruction execution cost ratio", 5.0,
                round(t_five / t_one, 2), note="should scale roughly linearly")
    print_summary(summary)

    # TPP execution must not change the event structure of forwarding.
    assert event_counts["instrumented"] == pytest.approx(event_counts["plain"], rel=0.01)
    # And the per-hop execution cost is roughly linear in the instruction count.
    assert 1.5 < t_five / t_one < 12
