"""E3 — §2.2 "Overheads": RCP* control-traffic overhead versus TCP.

The paper reports the bandwidth consumed by RCP*'s control TPPs as 1.0–6.0 %
of the flows' rate (3 → 99 long-lived flows), against TCP's 0.8–2.4 % of ack
overhead.  The reproduction measures both on the same two-bottleneck chain
(flow counts scaled to keep the discrete-event run short).
"""

import pytest

from repro.apps.rcp import ALPHA_MAXMIN, run_rcp_fairness_experiment
from repro.baselines.tcp_baseline import run_tcp_overhead_experiment
from repro.core.compiler import compile_tpp
from repro.apps.rcp import COLLECT_TPP_SOURCE
from repro.net import mbps
from repro.stats import ExperimentSummary


@pytest.fixture(scope="module")
def rcp_run():
    return run_rcp_fairness_experiment(alpha=ALPHA_MAXMIN, duration_s=8.0,
                                       link_rate_bps=mbps(10))


@pytest.fixture(scope="module")
def tcp_runs():
    return {n: run_tcp_overhead_experiment(num_flows=n, duration_s=4.0,
                                           link_rate_bps=mbps(10))
            for n in (3, 9)}


def test_rcp_control_overhead_vs_tcp(benchmark, rcp_run, tcp_runs, print_summary):
    # Micro-kernel: compiling the collect TPP — the per-deployment cost of the
    # control loop's probe template.
    benchmark(lambda: compile_tpp(COLLECT_TPP_SOURCE, num_hops=8))

    summary = ExperimentSummary("E3 / §2.2 overheads",
                                "Control-traffic overhead (fraction of flow bytes)")
    summary.add("RCP* TPP overhead, 3 flows (paper band 0.01-0.06)", 0.06,
                round(rcp_run.control_overhead_fraction, 4),
                note="paper upper bound of the 3..99-flow band")
    for flows, run in tcp_runs.items():
        summary.add(f"TCP ack overhead, {flows} flows (paper band 0.008-0.024)", 0.024,
                    round(run.overhead_fraction, 4))
    print_summary(summary)

    assert 0.005 < rcp_run.control_overhead_fraction < 0.10
    for run in tcp_runs.values():
        assert 0.005 < run.overhead_fraction < 0.035
    # The ordering the paper reports: TCP's overhead is slightly lower.
    assert min(r.overhead_fraction for r in tcp_runs.values()) < rcp_run.control_overhead_fraction
