"""Macro-benchmark: raw event and TPP-hop throughput of the hot path.

Unlike the figure benchmarks (which reproduce one of the paper's plots),
this benchmark locks in the performance of the simulator's execution chain
itself — ``Simulator.run`` → ``Port`` transmit state machine →
``TPPSwitch`` receive → ``Pipeline`` lookup → ``TCPU.execute_program`` —
so regressions in the hot path show up as a number, not a feeling.

Workload: a 3-tier fat-tree (k=4: core, aggregation, edge — 20 switches,
16 hosts), composed through the :class:`repro.session.Scenario` API: every
host's end-host shim stamps each UDP packet with a two-instruction TPP
(``PUSH [Switch:SwitchID]`` / ``PUSH [Queue:QueueOccupancy]``), and the
registered ``cross-pod-bursts`` workload sends periodic bursts to a
cross-pod partner through the batched injection path
(:meth:`repro.endhost.dataplane.DataplaneShim.send_burst`).  Reported:

* **events/sec** — discrete events executed per wall-clock second,
* **TPP-hops/sec** — TPP executions (one per switch traversal) per second.

The simulation itself is deterministic: for a given ``--duration`` the
event count, TPP-hop count, and per-flow delivery totals are identical on
every run and on every machine; only the wall-clock rates vary.  The
``--no-batch`` flag drives the identical workload through per-packet
``host.send`` calls for an apples-to-apples view of what batching buys.

TCPU engines
------------

``--traces`` runs the workload with the compiled-trace TCPU
(:mod:`repro.core.trace`) instead of the interpreter.
``--compare-traces`` runs *both* engines back to back, asserts they land
on byte-identical event/hop/packet totals, reports the events/sec
speedup, and records the comparison in a JSON artifact
(``BENCH_tcpu_trace.json`` by default, see ``--output``).

Usage::

    PYTHONPATH=src python benchmarks/bench_event_throughput.py [--quick]
    PYTHONPATH=src python benchmarks/bench_event_throughput.py --duration 0.02
    PYTHONPATH=src python benchmarks/bench_event_throughput.py --compare-traces --quick
"""

from __future__ import annotations

import argparse
import time

import _provenance
from repro import obs
from repro.endhost.filters import PacketFilter
from repro.net.link import gbps
from repro.session import Scenario

#: Packets per burst and burst cadence per host.
BURST_PACKETS = 8
BURST_INTERVAL_S = 100e-6
PAYLOAD_BYTES = 700

TPP_SOURCE = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]"

#: The events/sec speedup --compare-traces is expected to demonstrate.
EXPECTED_TRACE_SPEEDUP = 1.15


def build_workload(use_batch: bool = True, compile_traces: bool = False,
                   telemetry=None, recorder=None):
    """The 3-tier topology plus per-host burst generators, via one Scenario.

    ``recorder`` (a :class:`repro.obs.RecorderSpec`) attaches the flight
    recorder to the identical workload — the lever
    ``bench_flightrec_overhead.py`` uses to price the observation hooks.
    """
    scenario = (
        Scenario("fat-tree", seed=1, name="event-throughput",
                 k=4, link_rate_bps=gbps(1), link_delay_s=5e-6,
                 compile_traces=compile_traces)
        .tpp("event-throughput", TPP_SOURCE, num_hops=8,
             filter=PacketFilter(protocol="udp"))
        .workload("cross-pod-bursts", burst_packets=BURST_PACKETS,
                  burst_interval_s=BURST_INTERVAL_S, payload_bytes=PAYLOAD_BYTES,
                  use_batch=use_batch))
    if recorder is not None:
        scenario.flight_recorder(recorder)
    return scenario.build(telemetry=telemetry)


def run_once(duration_s: float, use_batch: bool = True,
             compile_traces: bool = False, recorder=None) -> dict:
    experiment = build_workload(use_batch=use_batch,
                                compile_traces=compile_traces,
                                recorder=recorder)
    sim, net = experiment.sim, experiment.network
    start = time.perf_counter()
    sim.run(until=duration_s)
    wall_s = time.perf_counter() - start
    tpp_hops = sum(switch.tcpu.tpps_executed for switch in net.switches.values())
    instructions = sum(switch.tcpu.instructions_executed
                       for switch in net.switches.values())
    forwarded = sum(switch.packets_forwarded for switch in net.switches.values())
    trace_execs = sum(switch.tcpu.trace_executions for switch in net.switches.values())
    return {
        "duration_s": duration_s,
        "wall_s": wall_s,
        "events": sim.events_executed,
        "events_per_s": sim.events_executed / wall_s,
        "tpp_hops": tpp_hops,
        "tpp_hops_per_s": tpp_hops / wall_s,
        "instructions": instructions,
        "packets_forwarded": forwarded,
        "compile_traces": compile_traces,
        "trace_executions": trace_execs,
        "traces_compiled": sum(switch.tcpu.traces_compiled
                               for switch in net.switches.values()),
    }


def run_best(duration_s: float, repeat: int, use_batch: bool = True,
             compile_traces: bool = False, recorder=None) -> dict:
    """Best (highest events/sec) of ``repeat`` runs."""
    best = None
    for _ in range(max(1, repeat)):
        result = run_once(duration_s, use_batch=use_batch,
                          compile_traces=compile_traces, recorder=recorder)
        if best is None or result["events_per_s"] > best["events_per_s"]:
            best = result
    return best


def print_result(result: dict, use_batch: bool) -> None:
    mode = "batched" if use_batch else "per-packet"
    engine = "compiled traces" if result["compile_traces"] else "interpreter"
    print(f"3-tier fat-tree (k=4), {result['duration_s'] * 1e3:g} ms simulated, "
          f"{mode} injection, TCPU engine: {engine}")
    print(f"  events executed     : {result['events']:,}")
    print(f"  TPP hops executed   : {result['tpp_hops']:,} "
          f"({result['instructions']:,} instructions)")
    print(f"  packets forwarded   : {result['packets_forwarded']:,}")
    print(f"  wall time           : {result['wall_s']:.3f} s")
    print(f"  events/sec          : {result['events_per_s']:,.0f}")
    print(f"  TPP-hops/sec        : {result['tpp_hops_per_s']:,.0f}")


def compare_traces(duration_s: float, repeat: int, use_batch: bool,
                   output: str) -> None:
    """Interpreter vs compiled traces on the identical workload + artifact."""
    interpreted = run_best(duration_s, repeat, use_batch=use_batch,
                           compile_traces=False)
    compiled = run_best(duration_s, repeat, use_batch=use_batch,
                        compile_traces=True)

    # The compiled engine must change nothing but speed.
    for field in ("events", "tpp_hops", "instructions", "packets_forwarded"):
        assert interpreted[field] == compiled[field], \
            f"{field} diverged: interpreted {interpreted[field]:,} " \
            f"vs compiled {compiled[field]:,}"
    assert compiled["trace_executions"] == compiled["tpp_hops"], \
        "every TPP hop should have taken the compiled trace"

    speedup = compiled["events_per_s"] / interpreted["events_per_s"]
    print_result(interpreted, use_batch)
    print()
    print_result(compiled, use_batch)
    print()
    print(f"compiled-trace speedup: {speedup:.3f}x events/sec "
          f"({interpreted['events_per_s']:,.0f} -> {compiled['events_per_s']:,.0f}); "
          f"identical totals ({compiled['events']:,} events / "
          f"{compiled['tpp_hops']:,} TPP hops)")
    if speedup < EXPECTED_TRACE_SPEEDUP:
        print(f"  WARNING: below the expected {EXPECTED_TRACE_SPEEDUP:.2f}x "
              f"(noisy machine?)")

    artifact = {
        "benchmark": "bench_event_throughput --compare-traces",
        "workload": {
            "topology": "fat-tree k=4 (20 switches, 16 hosts)",
            "tpp": TPP_SOURCE.replace("\n", "; "),
            "duration_s": duration_s,
            "burst_packets": BURST_PACKETS,
            "burst_interval_s": BURST_INTERVAL_S,
            "payload_bytes": PAYLOAD_BYTES,
            "use_batch": use_batch,
            "repeat": repeat,
        },
        "interpreted": interpreted,
        "compiled": compiled,
        "events_per_s_speedup": round(speedup, 4),
        "identical_totals": True,
    }
    _provenance.write_artifact(artifact, output)
    print(f"  artifact written    : {output}")


def profile(duration_s: float, use_batch: bool, compile_traces: bool,
            trace_output: str) -> None:
    """One instrumented run: Perfetto trace out, top-5 span self-times."""
    telemetry = obs.Telemetry(slices=8)
    experiment = build_workload(use_batch=use_batch,
                                compile_traces=compile_traces,
                                telemetry=telemetry)
    result = experiment.run(duration_s)
    obs.write_trace(telemetry, trace_output)
    print(f"profiled run: {result.events_executed:,} events over "
          f"{duration_s * 1e3:g} ms simulated")
    print(f"  Perfetto trace      : {trace_output} "
          f"(open in https://ui.perfetto.dev)")
    print("  top-5 span self-times:")
    top = sorted(telemetry.self_times().items(), key=lambda kv: -kv[1])[:5]
    for name, self_s in top:
        print(f"    {name:<22s} {self_s * 1e3:10.3f} ms")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=10e-3,
                        help="simulated seconds to run (default 10ms)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 2ms of simulated time")
    parser.add_argument("--no-batch", action="store_true",
                        help="drive the workload through per-packet sends")
    parser.add_argument("--traces", action="store_true",
                        help="run with the compiled-trace TCPU engine")
    parser.add_argument("--compare-traces", action="store_true",
                        help="run interpreter AND compiled traces, assert "
                             "identical totals, report speedup, write the "
                             "JSON artifact")
    parser.add_argument("--output", default="BENCH_tcpu_trace.json",
                        help="artifact path for --compare-traces "
                             "(default: BENCH_tcpu_trace.json)")
    parser.add_argument("--artifact", default="BENCH_event_throughput.json",
                        help="artifact path for the plain measurement "
                             "(default: BENCH_event_throughput.json; "
                             "'-' skips writing)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions (best wall-clock rate is reported)")
    parser.add_argument("--profile", action="store_true",
                        help="run once under telemetry: write a Perfetto "
                             "trace and print top-5 span self-times")
    parser.add_argument("--trace-output", default="trace_event_throughput.json",
                        help="Perfetto trace path for --profile "
                             "(default: trace_event_throughput.json)")
    args = parser.parse_args()

    duration = 2e-3 if args.quick else args.duration
    use_batch = not args.no_batch

    if args.profile:
        profile(duration, use_batch, args.traces, args.trace_output)
        return

    if args.compare_traces:
        compare_traces(duration, args.repeat, use_batch, args.output)
        return

    best = run_best(duration, args.repeat, use_batch=use_batch,
                    compile_traces=args.traces)
    print_result(best, use_batch)

    # Determinism guard: the simulated side of the workload must not depend
    # on wall-clock, batching, or the TCPU engine.  The check run flips one
    # lever from the measured run — the engine when batching is on (the
    # default), else batching — and must land on exactly the same totals.
    if use_batch:
        check = run_once(duration, use_batch=True, compile_traces=not args.traces)
    else:
        check = run_once(duration, use_batch=True, compile_traces=args.traces)
    assert check["events"] == best["events"], "event count must be deterministic"
    assert check["tpp_hops"] == best["tpp_hops"], "TPP hops must be deterministic"

    # Track the headline number like the other artifacts: the plain
    # measurement is the repo's events/sec trajectory across PRs.
    if args.artifact != "-":
        artifact = {
            "benchmark": "bench_event_throughput",
            "workload": {
                "topology": "fat-tree k=4 (20 switches, 16 hosts)",
                "tpp": TPP_SOURCE.replace("\n", "; "),
                "duration_s": duration,
                "burst_packets": BURST_PACKETS,
                "burst_interval_s": BURST_INTERVAL_S,
                "payload_bytes": PAYLOAD_BYTES,
                "use_batch": use_batch,
                "compile_traces": args.traces,
                "repeat": args.repeat,
            },
            "result": best,
            "determinism_check_identical": True,
        }
        _provenance.write_artifact(artifact, args.artifact)
        print(f"  artifact written    : {args.artifact}")


if __name__ == "__main__":
    main()
