"""Macro-benchmark: raw event and TPP-hop throughput of the hot path.

Unlike the figure benchmarks (which reproduce one of the paper's plots),
this benchmark locks in the performance of the simulator's execution chain
itself — ``Simulator.run`` → ``Port`` transmit state machine →
``TPPSwitch`` receive → ``Pipeline`` lookup → ``TCPU.execute_program`` —
so regressions in the hot path show up as a number, not a feeling.

Workload: a 3-tier fat-tree (k=4: core, aggregation, edge — 20 switches,
16 hosts), composed through the :class:`repro.session.Scenario` API: every
host's end-host shim stamps each UDP packet with a two-instruction TPP
(``PUSH [Switch:SwitchID]`` / ``PUSH [Queue:QueueOccupancy]``), and the
registered ``cross-pod-bursts`` workload sends periodic bursts to a
cross-pod partner through the batched injection path
(:meth:`repro.endhost.dataplane.DataplaneShim.send_burst`).  Reported:

* **events/sec** — discrete events executed per wall-clock second,
* **TPP-hops/sec** — TPP executions (one per switch traversal) per second.

The simulation itself is deterministic: for a given ``--duration`` the
event count, TPP-hop count, and per-flow delivery totals are identical on
every run and on every machine; only the wall-clock rates vary.  The
``--no-batch`` flag drives the identical workload through per-packet
``host.send`` calls for an apples-to-apples view of what batching buys.

Usage::

    PYTHONPATH=src python benchmarks/bench_event_throughput.py [--quick]
    PYTHONPATH=src python benchmarks/bench_event_throughput.py --duration 0.02
"""

from __future__ import annotations

import argparse
import time

from repro.endhost.filters import PacketFilter
from repro.net.link import gbps
from repro.session import Scenario

#: Packets per burst and burst cadence per host.
BURST_PACKETS = 8
BURST_INTERVAL_S = 100e-6
PAYLOAD_BYTES = 700

TPP_SOURCE = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]"


def build_workload(use_batch: bool = True):
    """The 3-tier topology plus per-host burst generators, via one Scenario."""
    experiment = (
        Scenario("fat-tree", seed=1, name="event-throughput",
                 k=4, link_rate_bps=gbps(1), link_delay_s=5e-6)
        .tpp("event-throughput", TPP_SOURCE, num_hops=8,
             filter=PacketFilter(protocol="udp"))
        .workload("cross-pod-bursts", burst_packets=BURST_PACKETS,
                  burst_interval_s=BURST_INTERVAL_S, payload_bytes=PAYLOAD_BYTES,
                  use_batch=use_batch)
        .build())
    return experiment.sim, experiment.network


def run_once(duration_s: float, use_batch: bool = True) -> dict:
    sim, net = build_workload(use_batch=use_batch)
    start = time.perf_counter()
    sim.run(until=duration_s)
    wall_s = time.perf_counter() - start
    tpp_hops = sum(switch.tcpu.tpps_executed for switch in net.switches.values())
    instructions = sum(switch.tcpu.instructions_executed
                       for switch in net.switches.values())
    forwarded = sum(switch.packets_forwarded for switch in net.switches.values())
    return {
        "duration_s": duration_s,
        "wall_s": wall_s,
        "events": sim.events_executed,
        "events_per_s": sim.events_executed / wall_s,
        "tpp_hops": tpp_hops,
        "tpp_hops_per_s": tpp_hops / wall_s,
        "instructions": instructions,
        "packets_forwarded": forwarded,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=10e-3,
                        help="simulated seconds to run (default 10ms)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 2ms of simulated time")
    parser.add_argument("--no-batch", action="store_true",
                        help="drive the workload through per-packet sends")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions (best wall-clock rate is reported)")
    args = parser.parse_args()

    duration = 2e-3 if args.quick else args.duration
    use_batch = not args.no_batch

    best = None
    for _ in range(max(1, args.repeat)):
        result = run_once(duration, use_batch=use_batch)
        if best is None or result["events_per_s"] > best["events_per_s"]:
            best = result

    mode = "batched" if use_batch else "per-packet"
    print(f"3-tier fat-tree (k=4), {duration * 1e3:g} ms simulated, {mode} injection")
    print(f"  events executed     : {best['events']:,}")
    print(f"  TPP hops executed   : {best['tpp_hops']:,} "
          f"({best['instructions']:,} instructions)")
    print(f"  packets forwarded   : {best['packets_forwarded']:,}")
    print(f"  wall time           : {best['wall_s']:.3f} s")
    print(f"  events/sec          : {best['events_per_s']:,.0f}")
    print(f"  TPP-hops/sec        : {best['tpp_hops_per_s']:,.0f}")

    # Determinism guard: the simulated side of the workload must not depend
    # on wall-clock or batching.  When batching, the per-packet variant has
    # to land on exactly the same event totals (the PR's core contract);
    # otherwise a plain re-run checks repeatability.
    check = run_once(duration, use_batch=False)
    assert check["events"] == best["events"], "event count must be deterministic"
    assert check["tpp_hops"] == best["tpp_hops"], "TPP hops must be deterministic"


if __name__ == "__main__":
    main()
