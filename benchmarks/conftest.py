"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure from the paper's
evaluation.  The pattern is:

* run the (possibly expensive) experiment once per session in a fixture,
* time a representative micro-kernel with pytest-benchmark so the run also
  yields machine-performance numbers,
* print a paper-vs-measured comparison table (via ``print_summary``) so the
  harness output contains the same rows/series the paper reports.
"""

from __future__ import annotations

import pytest

from repro.stats import ExperimentSummary


@pytest.fixture()
def print_summary(capsys):
    """Print an ExperimentSummary even under pytest's output capturing."""

    def _print(summary: ExperimentSummary) -> None:
        with capsys.disabled():
            print()
            print(summary.render())

    return _print
