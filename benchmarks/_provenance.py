"""Shared provenance stamping for the committed ``BENCH_*.json`` artifacts.

Every benchmark writes its artifact through :func:`write_artifact`, which
stamps a ``provenance`` section (git commit, python, host, cpu count, and
a fingerprint of the artifact's workload/config section) via
:mod:`repro.obs.provenance` before serialising.  The stamp answers "which
code, which machine, which configuration produced this number?" for any
artifact checked into the repo.

The module lives next to the benchmarks (imported as ``import
_provenance`` — scripts run with ``sys.path[0] == benchmarks/``), so all
four benchmarks share one stamping path.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.provenance import stamp


def write_artifact(artifact: dict[str, Any], path: str) -> dict[str, Any]:
    """Stamp ``artifact`` with provenance and write it as indented JSON.

    The fingerprint covers the artifact's ``workload`` (or ``config``)
    section — the knobs that determine the measured numbers — so two
    artifacts with equal fingerprints measured the same configuration.
    Returns the stamped artifact.
    """
    stamp(artifact)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    return artifact
