"""E10 — Table 5 / §6.2: end-host throughput versus number of installed filters.

The paper sweeps 0/1/10/100/1000 iptables rules in three placements ("first",
"last", "all") and reports the attainable network throughput.  The cost-model
rows are compared against the paper's; in addition, the *relative* slowdown of
the real (Python) filter table is measured on this machine to confirm the
structural claim that cost grows linearly in the rule count and is placement
independent.
"""

import pytest

from repro.core.compiler import compile_tpp
from repro.endhost.filters import FilterEntry, FilterTable, PacketFilter
from repro.hardware import EndHostCostModel, TABLE5_PAPER_GBPS
from repro.net.packet import udp_packet
from repro.stats import ExperimentSummary

RULE_COUNTS = (0, 1, 10, 100, 1000)


def _table_with_rules(num_rules: int) -> FilterTable:
    table = FilterTable()
    compiled = compile_tpp("PUSH [Switch:SwitchID]")
    for index in range(num_rules):
        table.install(FilterEntry(filter=PacketFilter(dport=20000 + index), app_id=1,
                                  tpp_template=compiled, priority=num_rules - index))
    return table


@pytest.fixture(scope="module")
def measured_slowdown():
    """Relative per-packet cost of matching against 100 rules vs 1 rule."""
    import time
    packet = udp_packet("a", "b", 100, dport=20000 + 999)   # matches nothing -> worst case
    results = {}
    for rules in (1, 100):
        table = _table_with_rules(rules)
        start = time.perf_counter()
        for _ in range(2000):
            table.match(packet)
        results[rules] = (time.perf_counter() - start) / 2000
    return results[100] / results[1]


def test_table5_filter_chain(benchmark, measured_slowdown, print_summary):
    # Micro-kernel: matching one packet against a 100-rule filter chain.
    table = _table_with_rules(100)
    packet = udp_packet("a", "b", 100, dport=20050)
    benchmark(lambda: table.match(packet))

    model = EndHostCostModel()
    summary = ExperimentSummary("E10 / Table 5",
                                "Throughput (Gb/s) vs number of installed filters")
    for scenario in ("first", "last", "all"):
        for rules in RULE_COUNTS:
            summary.add(f"{scenario:<6s} {rules:>5d} rules",
                        TABLE5_PAPER_GBPS[scenario][rules],
                        round(model.filter_chain_throughput_bps(rules, scenario) / 1e9, 2),
                        unit="Gb/s")
    summary.add("measured 100-rule vs 1-rule per-packet cost ratio", None,
                round(measured_slowdown, 1),
                note="linear-in-rules cost structure on this machine")
    print_summary(summary)

    for scenario in ("first", "last", "all"):
        for rules in RULE_COUNTS:
            modeled = model.filter_chain_throughput_bps(rules, scenario) / 1e9
            assert modeled == pytest.approx(TABLE5_PAPER_GBPS[scenario][rules], rel=0.25)
    # Placement independence and monotone degradation.
    assert model.filter_chain_throughput_bps(1000, "first") == \
        model.filter_chain_throughput_bps(1000, "last")
    assert measured_slowdown > 3
