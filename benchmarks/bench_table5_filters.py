"""E10 — Table 5 / §6.2: end-host throughput versus number of installed filters.

The paper sweeps 0/1/10/100/1000 iptables rules in three placements ("first",
"last", "all") and reports the attainable network throughput.  The cost-model
rows are compared against the paper's; in addition, the *relative* slowdown of
the real (Python) filter table is measured on this machine to confirm the
structural claim that cost grows linearly in the rule count and is placement
independent.
"""

import pytest

from repro.core.compiler import compile_tpp
from repro.endhost.filters import FilterEntry, FilterTable, PacketFilter
from repro.hardware import EndHostCostModel, TABLE5_PAPER_GBPS
from repro.net.packet import udp_packet
from repro.stats import ExperimentSummary

RULE_COUNTS = (0, 1, 10, 100, 1000)


def _table_with_rules(num_rules: int) -> FilterTable:
    table = FilterTable()
    compiled = compile_tpp("PUSH [Switch:SwitchID]")
    for index in range(num_rules):
        table.install(FilterEntry(filter=PacketFilter(dport=20000 + index), app_id=1,
                                  tpp_template=compiled, priority=num_rules - index))
    return table


@pytest.fixture(scope="module")
def measured_slowdown():
    """Relative per-packet cost of matching against 100 rules vs 1 rule.

    The probe packets cycle through distinct flows: the filter table
    memoizes same-flow runs (a semantics-preserving fast path), and this
    fixture measures the *scan* cost the paper's Table 5 is about, not the
    memo hit.
    """
    import time
    # Match nothing -> worst case; distinct sports defeat the same-flow memo.
    packets = [udp_packet("a", "b", 100, sport=10000 + i, dport=20000 + 999)
               for i in range(64)]
    results = {}
    for rules in (1, 100):
        table = _table_with_rules(rules)
        start = time.perf_counter()
        for i in range(2000):
            table.match(packets[i % 64])
        results[rules] = (time.perf_counter() - start) / 2000
    return results[100] / results[1]


def test_table5_filter_chain(benchmark, measured_slowdown, print_summary):
    # Micro-kernel: matching against a 100-rule filter chain, alternating
    # flows so the same-flow memo does not short-circuit the scan under test.
    table = _table_with_rules(100)
    packets = [udp_packet("a", "b", 100, sport=10000 + i, dport=20050)
               for i in range(2)]
    toggle = [0]

    def match_next():
        toggle[0] ^= 1
        return table.match(packets[toggle[0]])

    benchmark(match_next)

    model = EndHostCostModel()
    summary = ExperimentSummary("E10 / Table 5",
                                "Throughput (Gb/s) vs number of installed filters")
    for scenario in ("first", "last", "all"):
        for rules in RULE_COUNTS:
            summary.add(f"{scenario:<6s} {rules:>5d} rules",
                        TABLE5_PAPER_GBPS[scenario][rules],
                        round(model.filter_chain_throughput_bps(rules, scenario) / 1e9, 2),
                        unit="Gb/s")
    summary.add("measured 100-rule vs 1-rule per-packet cost ratio", None,
                round(measured_slowdown, 1),
                note="linear-in-rules cost structure on this machine")
    print_summary(summary)

    for scenario in ("first", "last", "all"):
        for rules in RULE_COUNTS:
            modeled = model.filter_chain_throughput_bps(rules, scenario) / 1e9
            assert modeled == pytest.approx(TABLE5_PAPER_GBPS[scenario][rules], rel=0.25)
    # Placement independence and monotone degradation.
    assert model.filter_chain_throughput_bps(1000, "first") == \
        model.filter_chain_throughput_bps(1000, "last")
    assert measured_slowdown > 3
