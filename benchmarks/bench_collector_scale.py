"""Macro-benchmark: collector-tier scaling (shard count vs summary throughput).

The §4.5 deployment model shards the collector tier behind a virtual IP and
relies on commutative merge operators to keep sharding semantics-free.  This
benchmark locks both halves of that claim in:

* **Invariance** — one seeded scenario (dumbbell + micro-burst monitor) runs
  unsharded and at 1/2/4/8 shards (inline transport).  Every run must land
  on the *identical* simulator event total, and every sharded run's merged
  collector view must render to the identical canonical JSON.  A violation
  is a hard assertion failure, not a number.  The shard-count runs are
  driven through :mod:`repro.sweep` (a ``collector.shards`` axis executed
  by :class:`~repro.sweep.SweepRunner`), so this benchmark also exercises
  the spec-serialization path end to end.
* **Throughput** — a synthetic summary workload (hosts × keyed bundle parts
  × rounds) is pushed through a standalone
  :class:`~repro.collect.CollectPlane` at each shard count, measuring
  front-door submissions/sec and the wall cost of the global ``merge()``.
  Merged totals are asserted equal across shard counts here too.
* **Delta vs cumulative** — the same synthetic hosts re-push their
  snapshots in a steady-state pattern (only ~1/8 of hosts change per
  round) through one cumulative and one delta-encoded plane.  The two
  merged views must render to byte-identical canonical JSON, and the
  delta plane must route strictly fewer bytes; both byte totals are
  recorded in the artifact.

The results are recorded in a JSON artifact (``BENCH_collector_scale.json``
by default) so the repo carries the measured run next to the code.

Usage::

    PYTHONPATH=src python benchmarks/bench_collector_scale.py [--quick]
    PYTHONPATH=src python benchmarks/bench_collector_scale.py --shards 1 2 4 8 16
"""

from __future__ import annotations

import argparse
import json
import time

import _provenance
from repro.apps.microburst import MICROBURST_TPP_SOURCE, MicroburstAggregator
from repro.collect import (CollectPlane, CounterSummary, HistogramSummary,
                           SeriesSummary, SummaryBundle, TopKSummary,
                           summary_jsonable)
from repro.endhost import PacketFilter
from repro.net import mbps
from repro.session import Scenario
from repro.sweep import SweepRunner, SweepSpec

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)


# --------------------------------------------------------------- invariance
def scenario(shards=None, seed: int = 11):
    built = (Scenario("dumbbell", seed=seed, name="collector-scale",
                      hosts_per_side=3, link_rate_bps=mbps(50))
             .tpp("monitor", MICROBURST_TPP_SOURCE, num_hops=6,
                  filter=PacketFilter(protocol="udp"),
                  aggregator=MicroburstAggregator)
             .workload("messages", offered_load=0.4, message_bytes=4000,
                       seed=seed))
    if shards is not None:
        built.collector(shards=shards, transport="inline")
    return built


def invariance_sweep(shard_counts, duration_s: float,
                     sweep_workers: int = 1) -> dict:
    """Run the shard-count axis as a spec sweep; assert invariance.

    The unsharded reference runs in-process; the sharded runs travel the
    full sweep path (Scenario -> ScenarioSpec -> SweepRunner -> mergeable
    ResultSummary), so shard-count invariance is asserted on exactly the
    artifacts a parallel sweep would produce.
    """
    legacy = scenario().run(duration_s=duration_s)
    sweep = (SweepSpec(scenario(shards=shard_counts[0]))
             .axis("collector.shards", shard_counts))
    outcome = SweepRunner(workers=sweep_workers,
                          duration_s=duration_s).run(sweep)
    assert len(outcome.completed) == len(shard_counts), \
        f"{len(shard_counts) - len(outcome.completed)} shard runs failed"

    rows = []
    reference_view = None
    merged = None
    by_label = {o.label: o for o in outcome.completed}
    for shards in shard_counts:
        summary = by_label[f"collector.shards={shards}"].summary
        merged = summary.app_summaries["monitor"]
        counters = summary.counters
        assert counters["events_executed"] == legacy.events_executed, \
            f"event totals diverged at {shards} shards: " \
            f"{counters['events_executed']:,} vs {legacy.events_executed:,}"
        view = json.dumps(summary_jsonable(merged), sort_keys=True)
        if reference_view is None:
            reference_view = view
        assert view == reference_view, \
            f"merged collector view diverged at {shards} shards"
        rows.append({
            "shards": shards,
            "events": counters["events_executed"],
            "summaries_submitted": counters["summaries_submitted"],
            "parts_delivered": counters["summary_parts_delivered"],
            "parts_dropped": counters["summary_parts_dropped"],
            "flushes": counters["summary_flushes"],
        })
        print(f"  {shards} shard(s): {counters['events_executed']:,} events, "
              f"{counters['summary_parts_delivered']} parts delivered, "
              f"{counters['summary_flushes']} flushes — merged view identical")
    return {
        "duration_s": duration_s,
        "events": legacy.events_executed,
        "sweep_workers": sweep_workers,
        "merged_samples": merged["counters"]["samples"],
        "runs": rows,
        "merged_view_identical": True,
    }


# --------------------------------------------------------------- throughput
def synthetic_summary(host_index: int, keys: int, round_index: int) -> SummaryBundle:
    """One host's bundle: counters + histogram + top-k + a keyed series."""
    counters = CounterSummary({"tpps": 100 + round_index, "tpps_truncated": host_index % 3})
    hist = HistogramSummary((0, 1, 2, 4, 8, 16, 32, 64, 128))
    busiest = TopKSummary(k=8)
    series = SeriesSummary()
    for key_index in range(keys):
        occupancy = (host_index * 7 + key_index * 3 + round_index) % 96
        hist.observe(occupancy)
        busiest.observe((key_index % 4, key_index), occupancy)
        series.add(round_index + key_index / 1000.0, (key_index % 4, key_index),
                   occupancy)
    return SummaryBundle({"counters": counters, "occupancy": hist,
                          "busiest": busiest, "series": series})


def throughput_sweep(shard_counts, hosts: int, keys: int, rounds: int) -> list[dict]:
    """Push the synthetic workload through each tier size and time it."""
    rows = []
    reference_view = None
    for shards in shard_counts:
        plane = CollectPlane(shards, batch=128, capacity=1 << 30)
        door = plane.front_door("bench")
        start = time.perf_counter()
        for round_index in range(rounds):
            for host_index in range(hosts):
                door.submit(f"host{host_index}",
                            synthetic_summary(host_index, keys, round_index),
                            time=float(round_index))
        submit_wall = time.perf_counter() - start
        start = time.perf_counter()
        merged = plane.merge()
        merge_wall = time.perf_counter() - start
        view = json.dumps({f"{app}/{key}": summary_jsonable(s)
                           for (app, key), s in merged.items()}, sort_keys=True)
        if reference_view is None:
            reference_view = view
        assert view == reference_view, \
            f"merged throughput view diverged at {shards} shards"
        submissions = hosts * rounds
        stats = plane.stats()
        rows.append({
            "shards": shards,
            "submissions": submissions,
            "parts_routed": stats.parts_routed,
            "submit_wall_s": submit_wall,
            "summaries_per_s": submissions / submit_wall,
            "parts_per_s": stats.parts_routed / submit_wall,
            "merge_wall_s": merge_wall,
            "bytes_received": stats.bytes_received,
        })
        print(f"  {shards} shard(s): {submissions / submit_wall:,.0f} summaries/s "
              f"({stats.parts_routed / submit_wall:,.0f} parts/s), "
              f"merge {merge_wall * 1e3:.1f} ms — merged view identical")
    return rows


# ------------------------------------------------------- delta vs cumulative
STEADY_STRIDE = 8


def delta_leg(shards: int, hosts: int, keys: int, rounds: int) -> dict:
    """Steady-state re-push through cumulative and delta planes.

    Every host submits its snapshot every round, but only hosts whose index
    matches the round (mod :data:`STEADY_STRIDE`) have new data — the
    workload shape where epoch diffs earn their keep.  The merged views
    must be byte-identical; the delta plane must route strictly fewer
    bytes.
    """
    rows = []
    reference_view = None
    for mode in ("cumulative", "delta"):
        plane = CollectPlane(shards, batch=128, capacity=1 << 30,
                             delta=(mode == "delta"))
        door = plane.front_door("bench")
        states = {host_index: synthetic_summary(host_index, keys, 0)
                  for host_index in range(hosts)}
        for round_index in range(1, rounds + 1):
            for host_index in range(hosts):
                if host_index % STEADY_STRIDE == round_index % STEADY_STRIDE:
                    states[host_index] = synthetic_summary(host_index, keys,
                                                           round_index)
                door.submit(f"host{host_index}", states[host_index],
                            time=float(round_index))
        merged = plane.merge()
        view = json.dumps({f"{app}/{key}": summary_jsonable(s)
                           for (app, key), s in merged.items()}, sort_keys=True)
        if reference_view is None:
            reference_view = view
        assert view == reference_view, \
            "delta-encoded merged view diverged from cumulative"
        stats = plane.stats()
        if mode == "delta":
            assert stats.delta_applied > 0, "delta plane never applied a diff"
            assert stats.delta_gaps == 0, \
                f"{stats.delta_gaps} delta gaps on a lossless transport"
        rows.append({
            "mode": mode,
            "bytes_routed": stats.bytes_routed,
            "parts_routed": stats.parts_routed,
            "delta_applied": stats.delta_applied,
            "delta_gaps": stats.delta_gaps,
        })
        print(f"  {mode}: {stats.bytes_routed:,} bytes routed "
              f"({stats.parts_routed} parts) — merged view identical")
    cumulative_bytes = rows[0]["bytes_routed"]
    delta_bytes = rows[1]["bytes_routed"]
    assert delta_bytes < cumulative_bytes, \
        f"delta encoding routed {delta_bytes:,} bytes >= " \
        f"cumulative's {cumulative_bytes:,} on a steady-state workload"
    ratio = delta_bytes / cumulative_bytes
    print(f"  delta/cumulative byte ratio: {ratio:.3f}")
    return {
        "shards": shards,
        "hosts": hosts, "keys": keys, "rounds": rounds,
        "steady_stride": STEADY_STRIDE,
        "runs": rows,
        "bytes_ratio": ratio,
        "merged_view_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shorter run, smaller workload")
    parser.add_argument("--shards", type=int, nargs="+",
                        default=list(DEFAULT_SHARD_COUNTS),
                        help="shard counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="simulated seconds for the invariance scenario")
    parser.add_argument("--hosts", type=int, default=256,
                        help="synthetic submitting hosts")
    parser.add_argument("--keys", type=int, default=64,
                        help="keyed samples per synthetic summary")
    parser.add_argument("--rounds", type=int, default=40,
                        help="synthetic push rounds (cumulative snapshots)")
    parser.add_argument("--sweep-workers", type=int, default=2,
                        help="sweep worker processes for the invariance runs")
    parser.add_argument("--output", default="BENCH_collector_scale.json",
                        help="artifact path (default: BENCH_collector_scale.json)")
    args = parser.parse_args()

    duration = 0.1 if args.quick else args.duration
    hosts = 32 if args.quick else args.hosts
    keys = 16 if args.quick else args.keys
    rounds = 8 if args.quick else args.rounds

    print(f"invariance: dumbbell micro-burst scenario, {duration * 1e3:g} ms "
          f"simulated, shard counts {args.shards} "
          f"(sweep-driven, {args.sweep_workers} worker(s))")
    invariance = invariance_sweep(args.shards, duration,
                                  sweep_workers=args.sweep_workers)
    print(f"throughput: {hosts} hosts x {keys} keys x {rounds} rounds, "
          f"shard counts {args.shards}")
    throughput = throughput_sweep(args.shards, hosts, keys, rounds)
    delta_shards = max(args.shards)
    print(f"delta vs cumulative: {hosts} hosts x {keys} keys x {rounds} "
          f"rounds at {delta_shards} shard(s), 1/{STEADY_STRIDE} of hosts "
          f"changing per round")
    delta = delta_leg(delta_shards, hosts, keys, rounds)

    artifact = {
        "benchmark": "bench_collector_scale",
        "quick": args.quick,
        "config": {
            "quick": args.quick,
            "duration_s": duration,
            "shard_counts": list(args.shards),
            "hosts": hosts, "keys": keys, "rounds": rounds,
            "sweep_workers": args.sweep_workers,
        },
        "shard_counts": list(args.shards),
        "invariance": invariance,
        "throughput": {
            "hosts": hosts, "keys": keys, "rounds": rounds,
            "runs": throughput,
        },
        "delta_vs_cumulative": delta,
    }
    _provenance.write_artifact(artifact, args.output)
    print(f"artifact written: {args.output}")


if __name__ == "__main__":
    main()
