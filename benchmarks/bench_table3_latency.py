"""E7 — Table 3 / §6.1: hardware latency costs of executing TPPs.

The per-step cycle costs are the paper's own inputs (NetFPGA synthesis, ASIC
designers' estimates); the benchmark recombines them into the reported
headline numbers: a 50 ns worst-case added latency on a 1 GHz ASIC, 6.25 kB
of buffering at 1 Tb/s, a 10–25 % relative increase over a 200–500 ns switch
transit, and a functional-model measurement of how long the software TCPU
takes per TPP (the simulator's own cost, for context).
"""

import pytest

from repro.core.compiler import compile_tpp
from repro.core.tcpu import PacketContext, TCPU
from repro.hardware import (ASIC, NETFPGA, TABLE3_PAPER_CYCLES, build_latency_report,
                            packetization_latency_ns, worst_case_tpp)
from repro.stats import ExperimentSummary


def test_table3_latency_costs(benchmark, print_summary):
    # Micro-kernel: functional-model execution of a worst-case (5x CSTORE) TPP.
    source = "\n".join(
        "CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]" for _ in range(5))
    compiled = compile_tpp(source, num_hops=1, max_instructions=5)

    class _Memory:
        def __init__(self):
            self.value = 0

        def read(self, address, context):
            return self.value

        def write(self, address, value, context):
            self.value = value
            return True

    tcpu, memory, context = TCPU(), _Memory(), PacketContext()

    def run_once():
        tpp = compiled.clone_tpp()
        return tcpu.execute(tpp, memory, context)

    benchmark(run_once)

    asic = build_latency_report(ASIC)
    netfpga = build_latency_report(NETFPGA)

    summary = ExperimentSummary("E7 / Table 3", "Hardware latency costs")
    for row, (netfpga_cycles, asic_cycles) in TABLE3_PAPER_CYCLES.items():
        summary.add(f"{row} (ASIC cycles)", asic_cycles, asic_cycles,
                    note="paper-reported input constant")
    summary.add("worst-case added latency, ASIC", 50.0, round(asic.worst_case_added_ns, 1),
                unit="ns")
    summary.add("buffering to absorb stall @1Tb/s", 6250.0,
                round(asic.buffering_bytes_at_1tbps, 1), unit="bytes")
    summary.add("relative increase vs 500ns switch", 0.10,
                round(asic.relative_increase_range[0], 3))
    summary.add("relative increase vs 200ns switch", 0.25,
                round(asic.relative_increase_range[1], 3))
    summary.add("packetisation latency, 64B @10Gb/s", 51.2,
                round(packetization_latency_ns(), 1), unit="ns")
    summary.add("NetFPGA per-stage added cycles", 2.5,
                round(netfpga.added_per_stage_cycles, 2),
                note="measured per-stage total was 2 cycles")
    print_summary(summary)

    assert asic.worst_case_added_ns == pytest.approx(50.0)
    assert asic.buffering_bytes_at_1tbps == pytest.approx(6250.0)
    assert asic.relative_increase_range == (pytest.approx(0.10), pytest.approx(0.25))
    assert netfpga.added_per_stage_cycles <= 3.5
    assert ASIC.tpp_added_latency_ns(worst_case_tpp()) > \
        ASIC.tpp_added_latency_ns(compile_tpp("PUSH [Switch:SwitchID]").tpp.instructions)
